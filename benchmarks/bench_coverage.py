"""COVERAGE — the static cross and the hunt's closed loop, measured.

ROADMAP item 2's "which code never ran?" question, as numbers:

* extracting the static call graph of the whole instrumented kernel is
  an AST pass, so it must stay interactive (well under a second) — the
  coverage report pays it once per invocation;
* the full cross over the seed corpus (two golden v2 captures) lands on
  the known accounting: 135 instrumented, 128 reachable, 98 covered
  (76.6%), 30 blind spots, 7 dead functions;
* one fixed-seed hunt round strictly increases coverage over the seed
  corpus — the before/after pair quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import shutil

from paperbench import once

from repro.coverage import (
    build_call_graph,
    build_coverage_report,
    hunt_coverage,
    scan_corpus,
)
from repro.instrument.namefile import NameTable

GOLDEN = pathlib.Path(__file__).resolve().parents[1] / "tests" / "golden"
SEED_CAPTURES = ("figure3_network_v2.mpf", "figure5_forkexec_v2.mpf")

#: Ceiling for the whole-kernel AST extraction; the pass takes ~100 ms
#: on a laptop, so 5 s only trips on a real complexity regression.
GRAPH_BUDGET_S = 5.0


def _seed_corpus(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    for name in SEED_CAPTURES:
        shutil.copy(GOLDEN / name, root / name)
    return root


def test_call_graph_extraction_is_interactive(benchmark, comparison):
    graph = once(benchmark, build_call_graph)
    elapsed = benchmark.stats.stats.mean
    comparison.row("graph extraction", f"< {GRAPH_BUDGET_S:.0f} s",
                   f"{elapsed * 1000:.0f} ms")
    comparison.row("graph nodes", "-", len(graph.nodes))
    comparison.row("instrumented tags", 135, len(graph.by_tag))
    assert elapsed < GRAPH_BUDGET_S
    assert len(graph.by_tag) == 135
    assert len(graph.reachable_tags()) == 128


def test_seed_corpus_cross_accounting(benchmark, comparison, tmp_path):
    names = NameTable.read(GOLDEN / "case_study.tags")
    root = _seed_corpus(tmp_path)
    graph = build_call_graph()

    def cross():
        return build_coverage_report(
            scan_corpus(root, names), names, graph=graph
        )

    report = once(benchmark, cross)
    comparison.row("covered functions", 98, len(report.covered))
    comparison.row("coverage of reachable", "76.6%",
                   f"{report.coverage_percent:.1f}%")
    comparison.row("blind spots (P602)", 30, len(report.blind_spots))
    comparison.row("dead instrumentation (P601)", 7, len(report.unreachable))
    assert len(report.covered) == 98
    assert len(report.blind_spots) == 30
    assert len(report.unreachable) == 7
    assert not report.unmapped


def test_one_hunt_round_grows_coverage(benchmark, comparison, tmp_path):
    names = NameTable.read(GOLDEN / "case_study.tags")
    root = _seed_corpus(tmp_path)
    baseline = scan_corpus(root, names).observed_union()

    def hunt():
        return hunt_coverage(baseline, seed=1, rounds=1, candidates=2)

    result = once(benchmark, hunt)
    comparison.row("baseline coverage", "-", len(result.baseline))
    comparison.row("after one round", "> baseline", len(result.covered))
    comparison.row("tags gained", ">= 1", len(result.gained))
    comparison.row("winning run", "-",
                   result.steps[0].label if result.steps else "(none)")
    assert result.improved
    assert len(result.covered) > len(result.baseline)
