"""FFS — the filesystem/disk measurements.

Paper: "Each read of the disc varied from 18 milliseconds up to 26
milliseconds.  Each write interrupt took about 200 microseconds in total,
with about 149 microseconds of that being actual transfer time of the
data to the controller.  Interrupts seemed to be close together most of
the time (< 100 microseconds) ... the CPU was only busy for 28% of the
time when doing a large number of writes."
"""

from __future__ import annotations

from paperbench import ms, once, pct, us

from repro.analysis.summary import summarize
from repro.kernel.drivers.wd import SECTOR_GAP_NS
from repro.sim.bus import Region
from repro.system import build_case_study
from repro.workloads.fileio import file_read_back, file_write_storm


def run_write_profile():
    system = build_case_study()
    capture = system.profile(
        lambda: file_write_storm(system.kernel, nblocks=20),
        label="FFS write storm",
    )
    analysis = system.analyze(capture)
    return system, analysis, summarize(analysis)


def test_ffs_write_profile(benchmark, comparison):
    system, analysis, summary = once(benchmark, run_write_profile)

    busy = 100 * analysis.busy_fraction
    comparison.row("CPU busy during writes", pct(28), pct(busy))
    assert 15 <= busy <= 55

    # Per-sector write interrupt: ISAINTR around wdintr.
    wdintr = summary.get("wdintr")
    assert wdintr is not None
    comparison.row("write interrupt (wdintr incl)", us(200), us(wdintr.avg_us))
    assert 120 <= wdintr.avg_us <= 280

    # Sector transfer to the controller: the paper's 149 us.
    transfer_us = 512 * (
        system.kernel.cost.main_read_ns + system.kernel.cost.isa16_write_ns
    ) / 1_000
    comparison.row("sector transfer", us(149), us(transfer_us))
    assert 120 <= transfer_us <= 180

    # Interrupt spacing: the controller gap is under 100 us.
    comparison.row("inter-sector gap", "< 100 us", us(SECTOR_GAP_NS / 1_000))
    assert SECTOR_GAP_NS < 100_000

    # spl* visible in the disk profile too ("at least 6%" of the busy 28%).
    spl_net_share = sum(
        summary.pct_net(summary.get(n))
        for n in ("splnet", "splx", "spl0", "splbio", "splhigh")
        if summary.get(n)
    )
    comparison.row("spl* share of busy time", ">= ~6%", pct(spl_net_share))
    assert spl_net_share >= 3


def test_ffs_read_latency(benchmark, comparison):
    system = build_case_study()
    result = once(benchmark, file_read_back, system.kernel, nblocks=10)
    mean = result.mean_op_us
    lo = min(result.per_op_us)
    hi = max(result.per_op_us)
    comparison.row("disk read, mean", "18-26 ms", ms(mean))
    comparison.row("disk read, min", ms(18_000), ms(lo))
    comparison.row("disk read, max", ms(26_000), ms(hi))
    assert 14_000 <= mean <= 28_000
    assert hi <= 35_000
    # Seek dominance: the CPU work per block is a small fraction.
    cpu_per_block_us = 16 * 250  # 16 sector interrupts
    assert cpu_per_block_us < 0.4 * mean
