"""FIG3 — Figure 3: the function summary of the TCP receive test.

Paper values: CPU 98.99% busy over a ~0.5 s capture; bcopy top at 33.25%
real, in_cksum second at 30.51%, splnet ~5.3% over ~2500 calls at ~10 us
each; soreceive/splx/malloc/werint/weget/free/westart fill the top ten.
"""

from __future__ import annotations

from paperbench import assert_order, once, pct, top_names, us

from repro.analysis.summary import summarize
from repro.system import build_case_study
from repro.workloads.network_recv import network_receive


def run_figure3():
    system = build_case_study()
    capture = system.profile(
        lambda: network_receive(system.kernel, total_packets=60),
        label="TCP receive (Figure 3)",
    )
    analysis = system.analyze(capture)
    return analysis, summarize(analysis), capture


def test_figure3_summary(benchmark, comparison):
    analysis, summary, capture = once(benchmark, run_figure3)

    print()
    print(summary.format(limit=12))

    busy = 100 * summary.busy_fraction
    comparison.row("CPU busy", pct(98.99), pct(busy))
    assert busy >= 95

    rows = summary.rows()
    assert_order(top_names(summary, 2), "bcopy", "in_cksum")
    comparison.row("bcopy % real", pct(33.25), pct(summary.pct_real(rows[0])))
    comparison.row("in_cksum % real", pct(30.51), pct(summary.pct_real(rows[1])))
    assert 25 <= summary.pct_real(rows[0]) <= 45
    assert 25 <= summary.pct_real(rows[1]) <= 42

    splnet = summary.get("splnet")
    comparison.row("splnet avg", us(10), us(splnet.avg_us))
    comparison.row("splnet calls/packet", "~15", f"{splnet.calls / 60:.1f}")
    assert 7 <= splnet.avg_us <= 14

    spl_share = sum(
        summary.pct_real(summary.get(n))
        for n in ("splnet", "splx", "spl0", "splhigh")
        if summary.get(n)
    )
    comparison.row("spl* family % real", pct(9.0), pct(spl_share))
    assert 3 <= spl_share <= 13

    present = {row.name for row in rows[:25]}
    for expected in ("soreceive", "werint", "weget", "malloc", "westart", "m_free"):
        assert expected in {r.name for r in rows}, f"{expected} missing"
    assert "bcopy" in present and "in_cksum" in present

    comparison.row("events captured", "28060 (0.5 s)", len(capture))
