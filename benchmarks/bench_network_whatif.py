"""NET — the packet-cost breakdown and the paper's two counterfactuals.

Paper numbers: the driver copy of a full packet ~1045 us; checksumming
1 KB ~843 us; copyout of a 1 KB cluster ~40 us; total ~2000 us/packet.

Counterfactual 1 (rejected): leave frames in controller RAM as external
mbufs — "Contrary to intuition, this would actually decrease the
performance ... The time to process a packet would increase from 2000
microseconds to around 3000 microseconds, a big loss."

Counterfactual 2 (recommended): recode in_cksum in assembler — "should
provide a reduction in packet processing from 2000 microseconds to
perhaps 1200 microseconds".
"""

from __future__ import annotations

from paperbench import once, us

from repro.sim.cpu import CostModel
from repro.system import build_case_study
from repro.workloads.network_recv import network_receive

PACKETS = 40


def packet_cost_us(cost: CostModel | None = None) -> float:
    system = build_case_study(cost=cost)
    result = network_receive(system.kernel, total_packets=PACKETS)
    assert result.bytes_received == PACKETS * 1024
    return result.elapsed_us / PACKETS


def run_all_variants():
    stock = packet_cost_us()
    controller_mbufs = packet_cost_us(
        CostModel(mbufs_in_controller_ram=True)
    )
    asm_cksum = packet_cost_us(CostModel(asm_cksum=True))
    return stock, controller_mbufs, asm_cksum


def test_network_whatif(benchmark, comparison):
    stock, controller_mbufs, asm_cksum = once(benchmark, run_all_variants)

    comparison.row("packet cost, stock", us(2_000), us(stock))
    assert 1_500 <= stock <= 3_200

    comparison.row(
        "packet cost, mbufs in controller RAM", us(3_000), us(controller_mbufs)
    )
    # "a big loss": the rejected optimisation makes things worse.
    assert controller_mbufs > stock * 1.2
    loss = controller_mbufs - stock
    comparison.row("  -> loss per packet", us(1_000), us(loss))

    comparison.row("packet cost, asm in_cksum", us(1_200), us(asm_cksum))
    # "a major improvement": roughly the checksum's share disappears.
    assert asm_cksum < stock * 0.75
    saving = stock - asm_cksum
    comparison.row("  -> saving per packet", us(800), us(saving))
    assert 500 <= saving <= 1_200

    # Ordering: asm recode < stock < controller-RAM mbufs, always.
    assert asm_cksum < stock < controller_mbufs
