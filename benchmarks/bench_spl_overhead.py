"""SPL — the interrupt-priority synchronisation tax.

Paper: "on the average it took 11 microseconds per splnet call ... In one
test, 9% of the total CPU time was spent in splnet, splx, splhigh and
spl0"; in the disk-write test "at least 6% [of busy time] was spent in
the spl* routines".  The 68020 comparison point: on a multi-priority
interrupt architecture the same primitive is a single move-to-SR.
"""

from __future__ import annotations

from paperbench import once, pct, us

from repro.analysis.summary import summarize
from repro.kernel.intr import splnet, splx
from repro.kernel.kernel import Kernel
from repro.sim.cpu import Cpu
from repro.sim.machine import Machine
from repro.system import build_case_study
from repro.workloads.fileio import file_write_storm
from repro.workloads.network_recv import network_receive

SPL_FAMILY = ("splnet", "splx", "spl0", "splhigh", "splbio", "splclock")


def spl_share(summary, of: str = "net") -> float:
    total = 0.0
    for name in SPL_FAMILY:
        stats = summary.get(name)
        if stats is None:
            continue
        total += summary.pct_net(stats) if of == "net" else summary.pct_real(stats)
    return total


def run_both_profiles():
    net_system = build_case_study()
    net_capture = net_system.profile(
        lambda: network_receive(net_system.kernel, total_packets=40)
    )
    net_summary = summarize(net_system.analyze(net_capture))

    disk_system = build_case_study()
    disk_capture = disk_system.profile(
        lambda: file_write_storm(disk_system.kernel, nblocks=16)
    )
    disk_summary = summarize(disk_system.analyze(disk_capture))
    return net_summary, disk_summary


def test_spl_overhead(benchmark, comparison):
    net_summary, disk_summary = once(benchmark, run_both_profiles)

    splnet_stats = net_summary.get("splnet")
    comparison.row("splnet per call", us(11), us(splnet_stats.avg_us))
    assert 7 <= splnet_stats.avg_us <= 14

    net_share = spl_share(net_summary, of="real")
    comparison.row("network test spl* % (of total)", pct(9.0), pct(net_share))
    assert 3 <= net_share <= 13

    disk_share = spl_share(disk_summary, of="net")
    comparison.row("disk-write test spl* % (of busy)", ">= 6%", pct(disk_share))
    assert disk_share >= 3

    # Ablation: the 68020's single-instruction spl primitive.
    i386 = Kernel()
    before = i386.machine.now_ns
    splx(i386, splnet(i386))
    i386_pair_us = (i386.machine.now_ns - before) / 1_000

    m68k = Kernel(Machine(cpu=Cpu.m68020_25mhz()))
    before = m68k.machine.now_ns
    splx(m68k, splnet(m68k))
    m68k_pair_us = (m68k.machine.now_ns - before) / 1_000
    comparison.row("splnet+splx pair, i386/ISA", "~14 us", us(i386_pair_us))
    comparison.row("splnet+splx pair, 68020", "~1-2 us", us(m68k_pair_us))
    assert i386_pair_us > 3 * m68k_pair_us
