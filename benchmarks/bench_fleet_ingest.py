"""FLEET — parallel corpus ingestion against the sequential reference.

The scenario ROADMAP item 1 names: a 200-capture corpus (synthesized
MPF2 files, deterministic content) ingested by ``repro fleet``'s worker
pool at 1/2/4/8 workers.  Reported per worker count: wall time and
captures/sec.  Asserted:

* the merged fleet summary is byte-identical at every worker count
  (the determinism contract — checked before any timing claim);
* the 4-worker speedup over 1 worker clears a hard floor.

The 3x-at-4-workers target from the issue assumes 4 real cores.  CI
runners routinely have fewer, so the *default* hard floor is CPU-aware —
``min(3.0, 0.75 * min(4, cpu_count))`` — while missing the 3x target
itself warns.  Like the decode bench, the floor is an env knob:

Environment knobs::

    REPRO_FLEET_CAPTURES      corpus size (default 200)
    REPRO_FLEET_EVENTS        events per capture (default 2000)
    REPRO_FLEET_MIN_SPEEDUP   asserted 4-worker speedup floor
                              (default: CPU-aware, see above)
    REPRO_FLEET_BENCH_OUT     where to write BENCH_fleet.json
                              (default: BENCH_fleet.json in the cwd)
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

from paperbench import once

from repro.atomicio import write_text_atomic
from repro.fleet import format_fleet_summary, ingest_fleet, plan_fleet
from repro.instrument.namefile import NameTable
from repro.instrument.tags import TagEntry
from repro.profiler.ram import RawRecord
from repro.profiler.upload import clear_meta_cache, write_capture_file

MASK = (1 << 24) - 1

FLEET_TARGET_SPEEDUP = 3.0
WORKER_COUNTS = (1, 2, 4, 8)


def fleet_captures() -> int:
    return int(os.environ.get("REPRO_FLEET_CAPTURES", 200))


def fleet_events() -> int:
    return int(os.environ.get("REPRO_FLEET_EVENTS", 2000))


def fleet_min_speedup() -> float:
    configured = os.environ.get("REPRO_FLEET_MIN_SPEEDUP")
    if configured is not None:
        return float(configured)
    cores = os.cpu_count() or 1
    return min(FLEET_TARGET_SPEEDUP, 0.75 * min(4, cores))


def _fleet_names() -> NameTable:
    table = NameTable()
    for i in range(6):
        table.add(TagEntry(name=f"kfunc{i}", value=500 + 2 * i))
    table.add(TagEntry(name="swtch", value=600, context_switch=True))
    return table


FLEET_NAMES = _fleet_names()


def _capture_records(index: int, events: int) -> list[RawRecord]:
    """Deterministic records for corpus capture *index* (no RNG)."""
    entries = [FLEET_NAMES.by_name(f"kfunc{i}") for i in range(6)]
    swtch = FLEET_NAMES.by_name("swtch")
    t = (index * 6151) & MASK
    records: list[RawRecord] = []
    emitted = 0
    block = index
    while emitted < events:
        records.append(RawRecord(tag=swtch.exit_value, time=t & MASK))
        emitted += 1
        t += 7 + (index % 4)
        for k in range(2):
            if emitted >= events:
                break
            fn = entries[(block + k) % 6]
            records.append(RawRecord(tag=fn.entry_value, time=t & MASK))
            emitted += 1
            t += 11
            if emitted >= events:
                break
            records.append(RawRecord(tag=fn.exit_value, time=t & MASK))
            emitted += 1
            t += 5
        if emitted < events:
            records.append(RawRecord(tag=swtch.entry_value, time=t & MASK))
            emitted += 1
            t += 23
        block += 1
    return records


def build_corpus(root: Path, captures: int, events: int) -> None:
    root.mkdir(parents=True, exist_ok=True)
    for index in range(captures):
        write_capture_file(
            root / f"cap_{index:04d}.mpf",
            _capture_records(index, events),
            label=f"bench-{index:04d}",
        )


def run_fleet_scaling(root: Path, captures: int, events: int) -> dict:
    build_corpus(root, captures, events)
    plan = plan_fleet(root)
    assert len(plan) == captures
    runs: dict[int, dict] = {}
    texts: dict[int, str] = {}
    for jobs in WORKER_COUNTS:
        clear_meta_cache()  # every worker count pays the same probe cost
        start = time.perf_counter()
        result = ingest_fleet(plan, FLEET_NAMES, jobs=jobs)
        elapsed = time.perf_counter() - start
        assert result.failed == 0
        texts[jobs] = format_fleet_summary(result)
        runs[jobs] = {
            "jobs": jobs,
            "wall_s": elapsed,
            "captures_per_sec": captures / elapsed,
        }
    # Determinism before any timing claim: every worker count produced
    # the exact same merged report bytes.
    reference = texts[1]
    for jobs, text in texts.items():
        assert text == reference, f"jobs={jobs} merged summary diverged"
    return {
        "captures": captures,
        "events_per_capture": events,
        "total_events": captures * events,
        "runs": [runs[jobs] for jobs in WORKER_COUNTS],
        "speedup_4x": runs[1]["wall_s"] / runs[4]["wall_s"],
        "byte_identical": True,
    }


def test_fleet_ingest_scaling(benchmark, comparison, tmp_path):
    captures = fleet_captures()
    events = fleet_events()
    result = once(
        benchmark, run_fleet_scaling, tmp_path / "corpus", captures, events
    )
    floor = fleet_min_speedup()
    speedup = result["speedup_4x"]

    comparison.row("corpus size", str(captures), result["captures"])
    comparison.row(
        "events per capture", str(events), result["events_per_capture"]
    )
    for run in result["runs"]:
        comparison.row(
            f"ingest @ {run['jobs']} worker(s)",
            "--",
            f"{run['wall_s']:.2f} s ({run['captures_per_sec']:.0f} cap/s)",
        )
    comparison.row(
        "4-worker speedup",
        f">= {FLEET_TARGET_SPEEDUP:.0f}x (floor {floor:.2f}x)",
        f"{speedup:.2f}x",
    )
    comparison.row("merged summary", "byte-identical", result["byte_identical"])

    out_path = os.environ.get("REPRO_FLEET_BENCH_OUT", "BENCH_fleet.json")
    document = {
        "benchmark": "fleet_ingest_scaling",
        "cpu_count": os.cpu_count(),
        "target_speedup": FLEET_TARGET_SPEEDUP,
        "floor_speedup": floor,
        **result,
    }
    write_text_atomic(out_path, json.dumps(document, indent=1))

    if speedup < FLEET_TARGET_SPEEDUP:
        warnings.warn(
            f"fleet ingest only {speedup:.2f}x at 4 workers, below the "
            f"{FLEET_TARGET_SPEEDUP:.0f}x target (hard floor {floor:.2f}x, "
            f"cpu_count={os.cpu_count()})",
            stacklevel=1,
        )
    assert speedup >= floor, (
        f"fleet ingest {speedup:.2f}x at 4 workers, below the {floor:.2f}x "
        f"hard floor (REPRO_FLEET_MIN_SPEEDUP)"
    )
