"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table/figure/claim from the paper's
evaluation and prints a paper-vs-measured comparison (run with ``-s`` to
see the tables inline; they are also asserted, so a silent green run
means the shapes hold).
"""

from __future__ import annotations

from typing import Iterable

class PaperComparison:
    """Collects paper-vs-measured rows and renders one table."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.rows: list[tuple[str, str, str]] = []

    def row(self, what: str, paper: object, measured: object) -> None:
        self.rows.append((what, str(paper), str(measured)))

    def render(self) -> str:
        width = max((len(r[0]) for r in self.rows), default=20)
        lines = [f"== {self.title} ==",
                 f"{'quantity':<{width}}  {'paper':>16}  {'measured':>16}"]
        for what, paper, measured in self.rows:
            lines.append(f"{what:<{width}}  {paper:>16}  {measured:>16}")
        return "\n".join(lines)

    def emit(self) -> None:
        print("\n" + self.render())


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def pct(value: float) -> str:
    return f"{value:.2f}%"


def us(value: float) -> str:
    return f"{value:.0f} us"


def ms(value_us: float) -> str:
    return f"{value_us / 1000:.1f} ms"


def top_names(summary, n: int) -> list[str]:
    return [row.name for row in summary.rows()[:n]]


def assert_order(names: Iterable[str], *expected_prefix: str) -> None:
    actual = list(names)[: len(expected_prefix)]
    assert actual == list(expected_prefix), (
        f"expected the profile to open with {expected_prefix}, got {actual}"
    )
