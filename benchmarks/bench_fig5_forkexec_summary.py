"""FIG5 — Figure 5: the high-cost subroutines of the fork/exec loop.

Paper rows (% of net busy time): pmap_remove 28.22 (67 calls, max
14061 us), pmap_pte 10.61 (5549 calls, ~3 us), splnet 6.20, bcopyb 5.21
(3 console scrolls at ~3.6 ms), spl0 4.85, pmap_protect 3.77, bcopy 2.71,
vm_fault 2.34 (115 calls, ~415 us incl), splx 2.28, vm_page_lookup 2.09
(~18 us), pmap_enter 1.67 (~29 us), bzero 1.66 — "Over 50% of the time is
being spent in the virtual memory routines".
"""

from __future__ import annotations

from paperbench import once, pct, us

from repro.analysis.summary import summarize
from repro.system import build_case_study
from repro.workloads.forkexec import fork_exec_storm


VM_NAMES = (
    "pmap_remove",
    "pmap_pte",
    "pmap_enter",
    "pmap_protect",
    "pmap_copy",
    "vm_fault",
    "vm_page_lookup",
    "vm_page_alloc",
    "vm_page_free",
    "vmspace_fork",
    "vmspace_exec",
    "vmspace_alloc",
    "vmspace_teardown",
    "vm_map_find",
    "vm_map_delete",
    "kmem_alloc",
    "bzero",
)


def run_figure5():
    system = build_case_study()
    capture = system.profile(
        lambda: fork_exec_storm(system.kernel, iterations=3, print_status=True),
        label="fork/exec loop (Figure 5)",
    )
    return summarize(system.analyze(capture))


def test_figure5_forkexec_summary(benchmark, comparison):
    summary = once(benchmark, run_figure5)
    print()
    print(summary.format(limit=14))

    rows = summary.rows()
    assert rows[0].name == "pmap_remove"
    comparison.row(
        "pmap_remove % net", pct(28.22), pct(summary.pct_net(rows[0]))
    )
    comparison.row(
        "pmap_remove max", us(14_061), us(summary.get("pmap_remove").max_us)
    )
    assert 12 <= summary.pct_net(rows[0]) <= 40

    pte = summary.get("pmap_pte")
    comparison.row("pmap_pte % net", pct(10.61), pct(summary.pct_net(pte)))
    comparison.row("pmap_pte avg", us(3), us(pte.avg_us))
    comparison.row("pmap_pte calls", 5_549, pte.calls)
    assert pte.calls >= 3_000
    assert pte.avg_us <= 5
    assert 5 <= summary.pct_net(pte) <= 20

    vm_share = sum(
        summary.pct_net(summary.get(n)) for n in VM_NAMES if summary.get(n)
    )
    comparison.row("VM routines % net", "> 50%", pct(vm_share))
    assert vm_share >= 50

    bcopyb = summary.get("bcopyb")
    comparison.row("bcopyb avg (scroll)", us(3_624), us(bcopyb.avg_us))
    assert 2_300 <= bcopyb.avg_us <= 4_500

    fault = summary.get("vm_fault")
    comparison.row("vm_fault avg incl", us(415), us(fault.avg_us))
    assert 200 <= fault.avg_us <= 600

    lookup = summary.get("vm_page_lookup")
    comparison.row("vm_page_lookup avg", us(18), us(lookup.avg_us))
    enter = summary.get("pmap_enter")
    comparison.row("pmap_enter avg", us(29), us(enter.avg_us))
    assert 10 <= lookup.avg_us <= 28
    assert 18 <= enter.avg_us <= 45

    # The spl family is visible in this profile too.
    assert summary.get("splnet") is not None
    assert summary.get("spl0") is not None
