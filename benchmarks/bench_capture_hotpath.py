"""CAPTURE — trigger-generation throughput of the optimized hot path.

PR 1 made the *analysis* side scale; this benchmark measures the other
half of the loop: the simulated kernel that generates the events.  The
paper's premise is that a trigger must be almost free (one ``movb``,
~400 ns); the optimized capture path gets the simulator closer to that
spirit by making the per-trigger Python cost O(1) — cached interrupt
horizon, fused cost charging, pre-resolved Profiler tap, cached bus
decode — while producing byte-identical captures.

Measured here, optimized engine vs the preserved reference engine
(``ReferenceInterruptQueue`` + linear decode + step-by-step charging):

* a synthetic trigger storm (default 500k enter/leave pairs = 1M trigger
  events) with a periodic re-arming interrupt line keeping the queue
  busy — asserted >= 3x triggers/sec;
* the Figure-4-style network-receive workload on the full system —
  reported, not asserted (it spends most of its time off the trigger
  path);
* determinism: the storm's captured RawRecord stream byte-compared
  between engines and hashed against a checked-in golden
  (``tests/golden/capture_hotpath.sha256``).

Environment knobs (the CI smoke job uses both)::

    REPRO_HOTPATH_PAIRS        enter/leave pairs for the storm (default 500000)
    REPRO_HOTPATH_MIN_SPEEDUP  asserted speedup floor (default 3.0)

The golden hash covers the board's RAM contents (16384-event depth), so
it is identical for every ``REPRO_HOTPATH_PAIRS`` large enough to fill
the board — reduced smoke runs check the same bytes as full runs.  To
regenerate after an intentional capture-format change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest benchmarks/bench_capture_hotpath.py
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import time

from paperbench import once

from repro.kernel.kernel import Kernel
from repro.kernel.kfunc import KFuncMeta
from repro.profiler.eprom import PiggyBackAdapter
from repro.profiler.hardware import ProfilerBoard
from repro.sim.engine import InterruptLine, ReferenceInterruptQueue
from repro.sim.machine import Machine
from repro.system import build_case_study
from repro.workloads.network_recv import network_receive

GOLDEN_HASH_PATH = (
    pathlib.Path(__file__).parent.parent / "tests" / "golden" / "capture_hotpath.sha256"
)

#: Local metas with pinned tags: the storm must NOT touch the global
#: kfunc registry (tag assignment there is registration-order sensitive,
#: and a stray registration would shift every golden capture).
STORM_META_A = KFuncMeta(name="storm_fn_a", module="bench/storm", base_ns=1_800)
STORM_META_B = KFuncMeta(name="storm_fn_b", module="bench/storm", base_ns=350)
STORM_TAGS = {"storm_fn_a": 0x10, "storm_fn_b": 0x12}

BOARD_DEPTH = 16384
TIMER_PERIOD_NS = 200_000

#: Default loop count: each iteration is two enter/leave pairs = four
#: trigger events, so 250k iterations is the 1M-event synthetic run.
DEFAULT_PAIRS = 250_000
MIN_FILL_PAIRS = BOARD_DEPTH  # enough pairs to fill the board's RAM


def storm_pairs() -> int:
    pairs = int(os.environ.get("REPRO_HOTPATH_PAIRS", DEFAULT_PAIRS))
    return max(pairs, MIN_FILL_PAIRS)


def min_speedup() -> float:
    return float(os.environ.get("REPRO_HOTPATH_MIN_SPEEDUP", 3.0))


def make_storm_kernel(engine: str) -> tuple[Kernel, ProfilerBoard]:
    machine = Machine()
    if engine == "reference":
        machine.interrupts = ReferenceInterruptQueue()
        machine.bus.decode_cache = False
    kernel = Kernel(machine)
    if engine == "reference":
        kernel.fastpath_enabled = False
    board = ProfilerBoard(depth=BOARD_DEPTH)
    kernel.attach_profiler(PiggyBackAdapter(board))
    kernel.set_profile_map(dict(STORM_TAGS), {})
    return kernel, board


def run_storm(engine: str, pairs: int) -> dict:
    """Drive *pairs* enter/leave pairs with live periodic interrupts.

    Three re-arming lines (clock-ish, net-ish, disk-ish) keep a realistic
    pending population in the queue throughout the run — the reference
    engine pays O(pending) per horizon query, the optimized engine pays
    its cached O(1) either way.
    """
    kernel, board = make_storm_kernel(engine)
    interrupts = kernel.machine.interrupts
    lines: list[InterruptLine] = []

    def make_line(irq: int, ipl: int, name: str, period_ns: int) -> InterruptLine:
        def handler() -> None:
            interrupts.post(line, kernel.machine.now_ns + period_ns)
            kernel.work(3_000)

        line = InterruptLine(irq=irq, name=name, ipl=ipl, handler=handler)
        interrupts.post(line, kernel.machine.now_ns + period_ns)
        lines.append(line)
        return line

    make_line(0, 6, "storm-clock", TIMER_PERIOD_NS)
    make_line(5, 3, "storm-net", 7 * TIMER_PERIOD_NS // 2)
    make_line(14, 4, "storm-disk", 9 * TIMER_PERIOD_NS)

    enter, leave = kernel.enter, kernel.leave
    board.arm()
    start = time.perf_counter()
    for _ in range(pairs):
        enter(STORM_META_A)
        leave(STORM_META_A)
        enter(STORM_META_B)
        leave(STORM_META_B)
    elapsed = time.perf_counter() - start
    board.disarm()
    records = board.pull_rams().records()
    triggers = kernel.stats["triggers"]
    return {
        "elapsed_s": elapsed,
        "triggers": triggers,
        "triggers_per_s": triggers / elapsed,
        "stream": b"".join(record.pack() for record in records),
        "events_stored": len(records),
        "overflowed": board.overflow_led,
        "sim_ns": kernel.machine.now_ns,
        "intr": kernel.stats["intr"],
    }


def run_figure4_workload(engine: str) -> dict:
    """The golden network-receive workload on the full system."""
    system = build_case_study(engine=engine)
    start = time.perf_counter()
    capture = system.profile(
        lambda: network_receive(system.kernel, total_packets=6),
        label="figure4 capture bench",
    )
    elapsed = time.perf_counter() - start
    triggers = system.kernel.stats["triggers"]
    return {
        "elapsed_s": elapsed,
        "triggers": triggers,
        "triggers_per_s": triggers / elapsed,
        "events": len(capture),
        "stream": b"".join(record.pack() for record in capture.records),
    }


def test_storm_throughput_speedup(benchmark, comparison):
    pairs = storm_pairs()

    def run_both():
        fast = run_storm("optimized", pairs)
        ref = run_storm("reference", pairs)
        return fast, ref

    fast, ref = once(benchmark, run_both)
    speedup = fast["triggers_per_s"] / ref["triggers_per_s"]
    comparison.row("storm trigger events", "1M-class", f"{fast['triggers']:,}")
    comparison.row(
        "reference triggers/sec", "(pre-PR path)", f"{ref['triggers_per_s']:,.0f}"
    )
    comparison.row(
        "optimized triggers/sec", ">= 3x ref", f"{fast['triggers_per_s']:,.0f}"
    )
    comparison.row("speedup", f">= {min_speedup():.1f}x", f"{speedup:.1f}x")
    comparison.row(
        "events stored", BOARD_DEPTH, f"{fast['events_stored']:,}"
    )

    # Identical simulations first — a speedup that changes the capture
    # would be worthless.
    assert fast["stream"] == ref["stream"]
    assert fast["sim_ns"] == ref["sim_ns"]
    assert fast["intr"] == ref["intr"]
    assert fast["triggers"] == ref["triggers"] == 4 * pairs
    assert fast["events_stored"] == BOARD_DEPTH
    assert fast["overflowed"]

    assert speedup >= min_speedup(), (
        f"capture hot path speedup {speedup:.2f}x is below the "
        f"{min_speedup():.1f}x floor "
        f"(optimized {fast['triggers_per_s']:,.0f}/s vs "
        f"reference {ref['triggers_per_s']:,.0f}/s)"
    )


def test_storm_capture_matches_golden_hash(benchmark):
    """Byte-level determinism guard: the storm capture's sha256 must match
    the checked-in golden.  Any drift in trigger timing, tag values,
    counter sampling or record packing fails here — including drift that
    affects both engines equally, which the parity tests cannot see."""
    pairs = storm_pairs()
    fast = once(benchmark, run_storm, "optimized", pairs)
    digest = hashlib.sha256(fast["stream"]).hexdigest()
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_HASH_PATH.write_text(digest + "\n")
        import pytest

        pytest.skip(f"regenerated {GOLDEN_HASH_PATH}")
    golden = GOLDEN_HASH_PATH.read_text().strip()
    assert digest == golden, (
        "captured RawRecord stream drifted from the golden hash; if the "
        "change is intentional, regenerate with REGEN_GOLDEN=1 and review"
    )


def test_figure4_workload_parity_and_throughput(benchmark, comparison):
    def run_both():
        fast = run_figure4_workload("optimized")
        ref = run_figure4_workload("reference")
        return fast, ref

    fast, ref = once(benchmark, run_both)
    speedup = fast["triggers_per_s"] / ref["triggers_per_s"]
    comparison.row("figure4 capture events", "", f"{fast['events']:,}")
    comparison.row(
        "reference triggers/sec", "(pre-PR path)", f"{ref['triggers_per_s']:,.0f}"
    )
    comparison.row(
        "optimized triggers/sec", "(report only)", f"{fast['triggers_per_s']:,.0f}"
    )
    comparison.row("speedup", "(report only)", f"{speedup:.1f}x")
    # The whole-system workload spends most wall-clock off the trigger
    # path, so only byte-identity is asserted here.
    assert fast["stream"] == ref["stream"]
    assert fast["events"] == ref["events"] > 0
