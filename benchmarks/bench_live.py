"""LIVE — a million events through the concurrent capture→analyze pipe.

The live pipeline's claim is that the consumer keeps up with the wire:
a producer thread streams an open-ended MPF2 capture into one end of a
socketpair while :class:`repro.live.analyzer.LiveAnalyzer` drains the
other end concurrently, folding batches into rolling windows as they
arrive.  This benchmark pushes one million synthetic records (the same
deterministic scheduling-block stream the SCALE benchmark uses) through
that pipe and asserts:

* **throughput** — the consumer sustains at least
  ``REPRO_LIVE_MIN_EVENTS_PER_SEC`` events/sec end to end (default
  100k/s; the measured rate is typically well past 1M/s);
* **bounded lag** — the peak batch lag (arrival-to-fold, the
  ``live.lag_ms.peak`` gauge) stays under
  ``REPRO_LIVE_MAX_LAG_MS`` (default 2000 ms) even with the producer
  running flat out ahead of the consumer;
* **identity** — the drained live summary is byte-identical to the
  batch ``summarize_records`` report of the same stream.

Results land in ``BENCH_live.json`` (``REPRO_LIVE_BENCH_OUT``) for the
EXPERIMENTS log and the CI live-smoke job.

Environment knobs::

    REPRO_LIVE_EVENTS              stream length (default 1000000)
    REPRO_LIVE_MIN_EVENTS_PER_SEC  asserted throughput floor (default 100000)
    REPRO_LIVE_MAX_LAG_MS          asserted peak-lag ceiling (default 2000)
    REPRO_LIVE_BENCH_OUT           where to write BENCH_live.json
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import warnings

from paperbench import once

from bench_streaming_scale import SCALE_NAMES, synthetic_stream
from repro.analysis.summary import summarize_records
from repro.atomicio import write_text_atomic
from repro.live import LiveAnalyzer
from repro.profiler.upload import CaptureStreamWriter
from repro.telemetry import TELEMETRY


def live_events() -> int:
    return int(os.environ.get("REPRO_LIVE_EVENTS", "1000000"))


def live_min_rate() -> float:
    return float(os.environ.get("REPRO_LIVE_MIN_EVENTS_PER_SEC", "100000"))


def live_max_lag_ms() -> float:
    return float(os.environ.get("REPRO_LIVE_MAX_LAG_MS", "2000"))


def run_live_pipe(total_events: int) -> dict:
    """Producer thread → socketpair → LiveAnalyzer; measured end to end."""
    left, right = socket.socketpair()

    def produce() -> None:
        sink = left.makefile("wb")
        try:
            with CaptureStreamWriter(sink, label="bench: live") as writer:
                batch = []
                for record in synthetic_stream(total_events):
                    batch.append(record)
                    if len(batch) >= 8192:
                        writer.write_records(batch)
                        batch.clear()
                if batch:
                    writer.write_records(batch)
        finally:
            sink.close()
            left.close()  # EOF: the open-ended reader validates the trailer

    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        analyzer = LiveAnalyzer(SCALE_NAMES, window_s=0.25)
        producer = threading.Thread(target=produce, name="bench-live-producer")
        started = time.perf_counter()
        producer.start()
        source = right.makefile("rb")
        live_summary = analyzer.consume(source)
        wall_s = time.perf_counter() - started
        producer.join()
        source.close()
        right.close()
        gauges = {
            sample.name: sample.value
            for sample in TELEMETRY.samples()
            if sample.name.startswith("live.")
        }
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()

    batch_summary = summarize_records(synthetic_stream(total_events), SCALE_NAMES)
    return {
        "events": total_events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(total_events / wall_s, 1),
        "windows": analyzer.windows,
        "batches": analyzer.batches,
        "bytes_total": analyzer.bytes_total,
        "peak_lag_ms": round(gauges.get("live.lag_ms.peak", 0.0), 3),
        "final_lag_ms": round(gauges.get("live.lag_ms", 0.0), 3),
        "byte_identical": live_summary.format() == batch_summary.format(),
    }


def test_live_pipe_sustains_million_events(benchmark, comparison):
    total = live_events()
    result = once(benchmark, run_live_pipe, total)

    rate_floor = live_min_rate()
    lag_ceiling = live_max_lag_ms()

    comparison.row("stream length", str(total), result["events"])
    comparison.row(
        "sustained rate",
        f">= {rate_floor:,.0f}/s",
        f"{result['events_per_sec']:,.0f}/s",
    )
    comparison.row(
        "peak consumer lag",
        f"<= {lag_ceiling:.0f} ms",
        f"{result['peak_lag_ms']:.1f} ms",
    )
    comparison.row("rolling windows closed", "--", result["windows"])
    comparison.row("live vs batch summary", "byte-identical", result["byte_identical"])

    out_path = os.environ.get("REPRO_LIVE_BENCH_OUT", "BENCH_live.json")
    document = {
        "benchmark": "live_pipe_sustained",
        "cpu_count": os.cpu_count(),
        "rate_floor": rate_floor,
        "lag_ceiling_ms": lag_ceiling,
        **result,
    }
    write_text_atomic(out_path, json.dumps(document, indent=1))

    assert result["byte_identical"], (
        "drained live summary diverged from the batch report"
    )
    if result["events_per_sec"] < 1_000_000:
        warnings.warn(
            f"live pipe sustained {result['events_per_sec']:,.0f} events/s, "
            f"below the 1M/s target (cpu_count={os.cpu_count()})",
            stacklevel=1,
        )
    assert result["events_per_sec"] >= rate_floor, (
        f"live pipe sustained {result['events_per_sec']:,.0f} events/s, below "
        f"the {rate_floor:,.0f}/s floor (REPRO_LIVE_MIN_EVENTS_PER_SEC)"
    )
    assert result["peak_lag_ms"] <= lag_ceiling, (
        f"peak consumer lag {result['peak_lag_ms']:.1f} ms exceeds the "
        f"{lag_ceiling:.0f} ms ceiling (REPRO_LIVE_MAX_LAG_MS)"
    )
