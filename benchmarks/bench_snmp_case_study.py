"""SNMP — the MIB B-tree case study (user-level profiling).

Paper: "A SNMP client based on the CMU SNMP code was profiled,
highlighting a major bottleneck in searching the MIB table linearly;
redesigning the data structure to use a B-tree to hold the MIB data
reduced the CPU cycles required to respond to SNMP requests by an order
of magnitude."
"""

from __future__ import annotations

from paperbench import once, us

from repro.analysis.compare import compare_summaries
from repro.analysis.summary import summarize
from repro.system import build_case_study
from repro.workloads.snmp import snmp_agent_run

MIB_SIZE = 600
REQUESTS = 25


def profile_agent(mib_kind: str):
    system = build_case_study()
    result = {}
    capture = system.profile(
        lambda: result.setdefault(
            "r",
            snmp_agent_run(
                system.kernel,
                mib_kind=mib_kind,
                mib_size=MIB_SIZE,
                requests=REQUESTS,
                names=system.names,
            ),
        ),
        label=f"snmpd ({mib_kind} MIB)",
    )
    return result["r"], summarize(system.analyze(capture))


def run_case_study():
    linear_result, linear_summary = profile_agent("linear")
    btree_result, btree_summary = profile_agent("btree")
    return linear_result, linear_summary, btree_result, btree_summary


def test_snmp_mib_case_study(benchmark, comparison):
    linear, linear_summary, btree, btree_summary = once(benchmark, run_case_study)

    # Step 1: the profile fingers the search, not the packet handling.
    search = linear_summary.get("mib_search_linear")
    request = linear_summary.get("snmp_request_linear")
    comparison.row(
        "linear search per request", "the bottleneck", us(search.avg_us)
    )
    assert search.net_us > 0.6 * request.net_us  # search dominates its parent

    # Step 2: the redesign.  Search CPU drops by an order of magnitude.
    btree_search = btree_summary.get("mib_search_btree")
    comparison.row("B-tree search per request", "~10x less", us(btree_search.avg_us))
    search_speedup = search.net_us / max(1, btree_search.net_us)
    comparison.row("search CPU reduction", "order of magnitude", f"{search_speedup:.1f}x")
    assert search_speedup >= 10

    # The comparison counts explain it (real algorithms, not planted costs).
    comparison.row(
        "comparisons, linear", f"~{MIB_SIZE // 2}/req", f"{linear.comparisons // REQUESTS}/req"
    )
    comparison.row(
        "comparisons, B-tree", "~log(n)/req", f"{btree.comparisons // REQUESTS}/req"
    )
    assert linear.comparisons > 10 * btree.comparisons

    # End-to-end response time improves too (bounded by request overhead).
    comparison.row("request time, linear", "slow", us(linear.us_per_request))
    comparison.row("request time, B-tree", "fast", us(btree.us_per_request))
    assert btree.us_per_request < 0.5 * linear.us_per_request

    # Both agents answered everything correctly.
    assert linear.hits == REQUESTS and btree.hits == REQUESTS

    # The before/after tooling tells the same story from the captures.
    diff = compare_summaries(linear_summary, btree_summary)
    movers = [d.name for d in diff.biggest_movers(2)]
    assert "mib_search_linear" in movers
