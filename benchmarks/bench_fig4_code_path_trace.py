"""FIG4 — Figure 4: the real-time code-path trace.

The paper's trace fragment shows the exact packet path
(ISAINTR -> weintr -> werint -> weread -> ... -> bcopy; then
ipintr -> splnet/splx/in_cksum -> tcp_input -> in_cksum/in_pcblookup),
a context-switch flag, the ``<- swtch`` return and the nested
falloc/fdalloc/min shapes.  The shape check here is that every one of
those call paths appears with the right nesting in our regenerated trace.
"""

from __future__ import annotations

from paperbench import once

from repro.analysis.trace import format_trace
from repro.kernel.net.socket import Socket
from repro.kernel.proc import Proc
from repro.kernel.syscalls import syscall
from repro.system import build_case_study
from repro.workloads.network_recv import LISTEN_PORT, SparcSender, network_receive


def run_figure4():
    system = build_case_study()
    capture = system.profile(
        lambda: network_receive(system.kernel, total_packets=8),
        label="TCP receive (Figure 4 window)",
    )
    analysis = system.analyze(capture)
    return system, analysis


def parent_names(analysis, target: str) -> set[str]:
    parents = set()
    for node in analysis.nodes():
        for child in node.children:
            if child.name == target:
                parents.add(node.name)
    return parents


def test_figure4_code_path_trace(benchmark):
    system, analysis = once(benchmark, run_figure4)
    text = format_trace(analysis, start_us=0, end_us=25_000)
    print()
    print("\n".join(text.splitlines()[:45]))

    full = format_trace(analysis)
    # Every function in the paper's Figure 4 fragment appears.
    for fragment in (
        "-> ISAINTR",
        "-> weintr",
        "-> werint",
        "-> weread",
        "-> weget",
        "-> bcopy",
        "-> ipintr",
        "-> splnet",
        "-> splx",
        "-> in_cksum",
        "-> tcp_input",
        "-> in_pcblookup",
        "-> tsleep",
        "<- swtch",
        "== MGET",
    ):
        assert fragment in full, f"{fragment} missing"

    # Nesting as printed in the paper.
    assert "weintr" in parent_names(analysis, "werint")
    assert "werint" in parent_names(analysis, "weread")
    assert "ISAINTR" in parent_names(analysis, "weintr")
    assert "ipintr" in parent_names(analysis, "tcp_input")
    assert "tcp_input" in parent_names(analysis, "in_cksum")

    # The accept path of Figure 4's tail: falloc -> fdalloc -> min.
    assert "falloc" in parent_names(analysis, "fdalloc")
    assert "fdalloc" in parent_names(analysis, "min")
