"""TELEMETRY — the disabled-overhead gate for the self-telemetry probes.

The telemetry layer's contract is that its probes stay *compiled in*: no
build flag strips them, so a disabled profiler must pay essentially
nothing.  Two design rules make that hold on the capture hot path:

* the trigger path (``kernel.enter``/``leave`` -> ``eprom_strobe``)
  carries **zero** probes — board, kernel and engine statistics are read
  out once, at capture-session exit (boundary sampling);
* every other probe starts with one attribute check
  (``if not self.enabled: return``) and hot loops hoist that check to
  once per chunk.

Measured here, reusing the PR 2 trigger storm
(:func:`bench_capture_hotpath.run_storm`):

* interleaved disabled/enabled storm runs (best-of-3 each), asserting
  the enabled-vs-disabled throughput delta stays inside the gate —
  the capture hot path must not slow down even with telemetry *on*;
* byte-identity of the disabled-telemetry capture against the PR 2
  golden hash (``tests/golden/capture_hotpath.sha256``): the baseline
  simulation is provably unchanged by the telemetry layer's existence;
* the per-call cost of a disabled probe (reported, not asserted): what
  one ``count()``/``span()`` costs when nobody is listening.

Environment knobs (the CI smoke job uses both)::

    REPRO_HOTPATH_PAIRS           enter/leave pairs per storm (default 250000)
    REPRO_TELEM_MAX_OVERHEAD_PCT  gate on enabled-vs-disabled delta (default 2.0)
"""

from __future__ import annotations

import hashlib
import os
import time

from paperbench import once

from bench_capture_hotpath import GOLDEN_HASH_PATH, run_storm, storm_pairs
from repro.telemetry import TELEMETRY


def max_overhead_pct() -> float:
    return float(os.environ.get("REPRO_TELEM_MAX_OVERHEAD_PCT", 2.0))


def _storm_disabled(pairs: int) -> dict:
    TELEMETRY.disable()
    TELEMETRY.reset()
    return run_storm("optimized", pairs)


def _storm_enabled(pairs: int) -> dict:
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        return run_storm("optimized", pairs)
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()


def test_disabled_telemetry_overhead_gate(benchmark, comparison):
    pairs = storm_pairs()
    gate = max_overhead_pct()

    def run_interleaved():
        disabled_runs: list[dict] = []
        enabled_runs: list[dict] = []
        # Interleave the variants so clock drift and thermal throttling
        # hit both sides equally; best-of-3 discards warmup noise.
        for _ in range(3):
            disabled_runs.append(_storm_disabled(pairs))
            enabled_runs.append(_storm_enabled(pairs))
        return disabled_runs, enabled_runs

    disabled_runs, enabled_runs = once(benchmark, run_interleaved)
    best_disabled = max(r["triggers_per_s"] for r in disabled_runs)
    best_enabled = max(r["triggers_per_s"] for r in enabled_runs)
    overhead_pct = 100.0 * (best_disabled - best_enabled) / best_disabled

    comparison.row("storm trigger events", "1M-class", f"{disabled_runs[0]['triggers']:,}")
    comparison.row(
        "disabled triggers/sec", "(the shipped default)", f"{best_disabled:,.0f}"
    )
    comparison.row(
        "enabled triggers/sec", "(boundary sampling)", f"{best_enabled:,.0f}"
    )
    comparison.row("enabled overhead", f"<= {gate:.1f}%", f"{overhead_pct:+.2f}%")

    # The simulation must be identical in all three states: telemetry
    # absent (the PR 2 golden), disabled, and enabled.
    golden = GOLDEN_HASH_PATH.read_text().strip()
    for runs, variant in ((disabled_runs, "disabled"), (enabled_runs, "enabled")):
        digest = hashlib.sha256(runs[0]["stream"]).hexdigest()
        assert digest == golden, (
            f"{variant}-telemetry capture drifted from the PR 2 golden "
            "hash: the telemetry layer changed the simulation"
        )

    assert overhead_pct <= gate, (
        f"telemetry overhead on the capture hot path is {overhead_pct:.2f}% "
        f"(gate {gate:.1f}%): enabled {best_enabled:,.0f}/s vs "
        f"disabled {best_disabled:,.0f}/s"
    )


def test_disabled_probe_cost_per_call(benchmark, comparison):
    """Report what one disabled probe costs — the price of keeping the
    instrumentation compiled in.  Not asserted: absolute nanoseconds are
    machine property, the gate above is the contract."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    calls = 200_000

    def cost(fn) -> float:
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        return (time.perf_counter() - start) / calls * 1e9

    def measure():
        return (
            cost(lambda: TELEMETRY.count("bench.counter")),
            cost(lambda: TELEMETRY.set_gauge("bench.gauge", 1.0)),
            cost(lambda: TELEMETRY.span("bench.span").close()),
            cost(lambda: None),
        )

    count_ns, gauge_ns, span_ns, floor_ns = once(benchmark, measure)
    comparison.row("disabled count()", "(report only)", f"{count_ns:,.0f} ns/call")
    comparison.row("disabled set_gauge()", "(report only)", f"{gauge_ns:,.0f} ns/call")
    comparison.row("disabled span().close()", "(report only)", f"{span_ns:,.0f} ns/call")
    comparison.row("empty lambda floor", "(report only)", f"{floor_ns:,.0f} ns/call")
    # Disabled probes record nothing at all.
    assert TELEMETRY.samples() == []
    assert list(TELEMETRY.spans()) == []
