"""B/A — the "accurate before and after measurements" workflow.

Paper: "quantitative comparison may guide design and implementation
improvements as performance bottlenecks are highlighted in the kernel,
and accurate before and after measurements may be made to test the
success of such changes."

The change under test is the paper's own recommendation — recoding
``in_cksum`` in assembler — applied as a cost-model change and verified
with the Profiler on the identical workload.
"""

from __future__ import annotations

from paperbench import once, us

from repro.analysis.compare import compare_summaries
from repro.analysis.summary import summarize
from repro.sim.cpu import CostModel
from repro.system import build_case_study
from repro.workloads.network_recv import network_receive

PACKETS = 40


def profile_once(cost: CostModel | None):
    system = build_case_study(cost=cost)
    capture = system.profile(
        lambda: network_receive(system.kernel, total_packets=PACKETS)
    )
    return summarize(system.analyze(capture))


def run_before_after():
    before = profile_once(None)
    after = profile_once(CostModel(asm_cksum=True))
    return compare_summaries(before, after)


def test_before_after_cksum_recode(benchmark, comparison):
    diff = once(benchmark, run_before_after)
    print()
    print(diff.format(limit=8))

    cksum_delta = diff.deltas["in_cksum"]
    comparison.row(
        "in_cksum net, before", "~30% of CPU", us(cksum_delta.net_before_us)
    )
    comparison.row(
        "in_cksum net, after", "small", us(cksum_delta.net_after_us)
    )
    comparison.row(
        "in_cksum speedup", "~10x (C -> asm)", f"{cksum_delta.speedup:.1f}x"
    )
    assert cksum_delta.speedup > 5

    # The change is surgical: bcopy (untouched) moves by <2%.
    bcopy_delta = diff.deltas["bcopy"]
    drift = abs(bcopy_delta.net_delta_us) / max(1, bcopy_delta.net_before_us)
    comparison.row("bcopy drift (control)", "~0", f"{100 * drift:.2f}%")
    assert drift < 0.02

    # Whole-run effect matches the paper's 2000 -> ~1200 us projection.
    comparison.row(
        "workload speedup", "~1.6x", f"{diff.wall_speedup:.2f}x"
    )
    assert 1.25 <= diff.wall_speedup <= 2.0

    # in_cksum is the single biggest mover.
    assert diff.biggest_movers(1)[0].name == "in_cksum"
