"""SCALE — the streaming/sharded pipeline against a million-event stream.

The paper's board holds 16384 events; this benchmark plays the long-run
scenario the streaming pipeline exists for: a synthetic stream of one
million records (many thousand scheduling blocks, dozens of 24-bit timer
wraps) analysed three ways —

* batch: decode everything, build the full call forest, summarise;
* streaming: one pass of :class:`SummaryAccumulator`, no tree;
* sharded: quiescent-boundary shards on 4 workers, merged.

Asserted claims: the streaming and sharded paths are at least 3x faster
than batch in wall-clock, all three produce byte-identical summary text,
and streaming peak memory is bounded (a 10x longer stream must not cost
even 2x the peak).  A second test checks the same byte-identity on the
real Figure 3 and Figure 5 workloads.

The decode leg benchmarks the two record-decode engines over the same
million-event stream: the per-record reference loader against the
columnar shear decoder (:func:`decode_record_columns`), plus the full
capture-file ingest both ways.  The columnar result is verified
lossless (it re-serialises to the exact input bytes) before any timing
claim is made.

Environment knobs (the CI decode-parity job uses both)::

    REPRO_DECODE_EVENTS       events in the decode leg (default 1000000)
    REPRO_DECODE_MIN_SPEEDUP  asserted speedup floor (default 3.0); the
                              10x target is reported, and missing it
                              warns rather than fails
"""

from __future__ import annotations

import io
import os
import time
import tracemalloc
import warnings
from typing import Iterator

from paperbench import once

from repro.analysis.callstack import analyze_capture
from repro.analysis.pipeline import analyze_sharded
from repro.analysis.summary import summarize, summarize_records
from repro.profiler.upload import (
    decode_record_columns,
    dump_records,
    iter_capture_columns,
    iter_capture_file,
    load_records,
    write_capture_stream,
)
from repro.instrument.namefile import NameTable
from repro.instrument.tags import TagEntry
from repro.profiler.capture import Capture
from repro.profiler.ram import RawRecord
from repro.system import build_case_study

MASK = (1 << 24) - 1


def _scale_names() -> NameTable:
    """Eight rotating kernel functions plus the context-switch marker."""
    table = NameTable()
    for i in range(8):
        table.add(TagEntry(name=f"kfunc{i}", value=500 + 2 * i))
    table.add(TagEntry(name="swtch", value=600, context_switch=True))
    return table


SCALE_NAMES = _scale_names()


def synthetic_stream(total_events: int) -> Iterator[RawRecord]:
    """A deterministic stream of scheduling blocks, lazily generated.

    Each 8-record block is one scheduling quantum: ``swtch`` exit, three
    nested-free call pairs over rotating functions, ``swtch`` entry.  The
    24-bit counter wraps naturally every ~16.8 s of simulated time.
    """
    entries = [SCALE_NAMES.by_name(f"kfunc{i}") for i in range(8)]
    swtch = SCALE_NAMES.by_name("swtch")
    t = 0
    emitted = 0
    block = 0
    while emitted < total_events:
        yield RawRecord(tag=swtch.exit_value, time=t & MASK)
        emitted += 1
        t += 7
        for k in range(3):
            if emitted >= total_events:
                return
            fn = entries[(block + k) % 8]
            yield RawRecord(tag=fn.entry_value, time=t & MASK)
            emitted += 1
            t += 11
            if emitted >= total_events:
                return
            yield RawRecord(tag=fn.exit_value, time=t & MASK)
            emitted += 1
            t += 5
        if emitted >= total_events:
            return
        yield RawRecord(tag=swtch.entry_value, time=t & MASK)
        emitted += 1
        t += 23
        block += 1


def run_scale(total_events: int) -> dict:
    records = list(synthetic_stream(total_events))
    capture = Capture(records=tuple(records), names=SCALE_NAMES, label="scale")

    start = time.perf_counter()
    batch = summarize(analyze_capture(capture))
    batch_s = time.perf_counter() - start

    start = time.perf_counter()
    streamed = summarize_records(iter(records), SCALE_NAMES)
    stream_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = analyze_sharded(records, SCALE_NAMES, workers=4)
    shard_s = time.perf_counter() - start

    return {
        "events": len(records),
        "batch_s": batch_s,
        "stream_s": stream_s,
        "shard_s": shard_s,
        "shards": sharded.shard_count,
        "batch_text": batch.format(),
        "stream_text": streamed.format(),
        "shard_text": sharded.summary.format(),
    }


def test_scale_million_events(benchmark, comparison):
    result = once(benchmark, run_scale, 1_000_000)

    stream_x = result["batch_s"] / result["stream_s"]
    shard_x = result["batch_s"] / result["shard_s"]
    comparison.row("events analysed", "1000000", result["events"])
    comparison.row("shards (16384-event)", ">= 61", result["shards"])
    comparison.row("batch wall", "--", f"{result['batch_s']:.2f} s")
    comparison.row("streaming wall", ">= 3x faster", f"{result['stream_s']:.2f} s")
    comparison.row("sharded wall (4 workers)", ">= 3x faster", f"{result['shard_s']:.2f} s")
    comparison.row("streaming speedup", ">= 3x", f"{stream_x:.1f}x")
    comparison.row("sharded speedup", ">= 3x", f"{shard_x:.1f}x")

    assert result["events"] == 1_000_000
    assert result["shards"] >= 61  # 1M events / 16384-per-shard
    # The scaling claim: both bounded-memory paths beat batch by >= 3x.
    assert result["stream_s"] * 3 <= result["batch_s"], (
        f"streaming only {stream_x:.2f}x faster than batch"
    )
    assert result["shard_s"] * 3 <= result["batch_s"], (
        f"sharded only {shard_x:.2f}x faster than batch"
    )
    # ... and both are byte-identical to the batch summary.
    assert result["stream_text"] == result["batch_text"]
    assert result["shard_text"] == result["batch_text"]


DECODE_TARGET_SPEEDUP = 10.0


def decode_events() -> int:
    return int(os.environ.get("REPRO_DECODE_EVENTS", 1_000_000))


def decode_min_speedup() -> float:
    return float(os.environ.get("REPRO_DECODE_MIN_SPEEDUP", 3.0))


def run_decode_leg(total_events: int) -> dict:
    records = list(synthetic_stream(total_events))
    blob = dump_records(records)
    capture_file = io.BytesIO()
    write_capture_stream(capture_file, records, version=2)
    capture_blob = capture_file.getvalue()

    start = time.perf_counter()
    reference = load_records(blob)
    reference_s = time.perf_counter() - start

    start = time.perf_counter()
    columns = decode_record_columns(blob)
    columnar_s = time.perf_counter() - start

    # Losslessness before any timing claim: the shear re-serialises to
    # the exact input bytes, and spot records match the reference.
    assert columns.to_bytes() == blob
    assert len(columns) == len(reference)
    stride = max(1, len(reference) // 997)
    for i in range(0, len(reference), stride):
        assert columns.record(i) == reference[i]

    start = time.perf_counter()
    file_reference = sum(1 for _ in iter_capture_file(io.BytesIO(capture_blob)))
    file_reference_s = time.perf_counter() - start

    start = time.perf_counter()
    file_columnar = sum(
        len(batch) for batch in iter_capture_columns(io.BytesIO(capture_blob))
    )
    file_columnar_s = time.perf_counter() - start
    assert file_reference == file_columnar == total_events

    return {
        "events": total_events,
        "reference_s": reference_s,
        "columnar_s": columnar_s,
        "file_reference_s": file_reference_s,
        "file_columnar_s": file_columnar_s,
        "columnar_events_per_sec": total_events / columnar_s,
    }


def test_decode_leg_speedup(benchmark, comparison):
    result = once(benchmark, run_decode_leg, decode_events())
    speedup = result["reference_s"] / result["columnar_s"]
    file_speedup = result["file_reference_s"] / result["file_columnar_s"]
    floor = decode_min_speedup()

    comparison.row("decode leg events", str(decode_events()), result["events"])
    comparison.row("reference decode", "--", f"{result['reference_s'] * 1e3:.0f} ms")
    comparison.row("columnar decode", "--", f"{result['columnar_s'] * 1e3:.0f} ms")
    comparison.row(
        "columnar throughput",
        "--",
        f"{result['columnar_events_per_sec'] / 1e6:.1f} M events/s",
    )
    comparison.row(
        "blob decode speedup", f">= {DECODE_TARGET_SPEEDUP:.0f}x", f"{speedup:.1f}x"
    )
    comparison.row("capture-file ingest speedup", "reported", f"{file_speedup:.1f}x")

    if speedup < DECODE_TARGET_SPEEDUP:
        warnings.warn(
            f"columnar decode only {speedup:.1f}x over reference, below the "
            f"{DECODE_TARGET_SPEEDUP:.0f}x target (hard floor {floor:.0f}x)",
            stacklevel=1,
        )
    assert speedup >= floor, (
        f"columnar decode {speedup:.2f}x over reference, below the "
        f"{floor:.1f}x hard floor (REPRO_DECODE_MIN_SPEEDUP)"
    )


def streaming_peak_bytes(total_events: int) -> int:
    """Peak allocation of the streaming path fed straight off a generator."""
    stream = synthetic_stream(total_events)
    tracemalloc.start()
    try:
        summarize_records(stream, SCALE_NAMES)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_scale_bounded_memory(comparison):
    small = streaming_peak_bytes(100_000)
    large = streaming_peak_bytes(1_000_000)
    comparison.row("peak RSS @ 100k events", "O(chunk)", f"{small / 1024:.0f} KiB")
    comparison.row("peak RSS @ 1M events", "O(chunk)", f"{large / 1024:.0f} KiB")
    # 10x the events must not cost even 2x the peak: memory is bounded by
    # open-call depth + live table size, not by trace length.
    assert large < 2 * small + 64 * 1024, (
        f"streaming peak grew from {small} to {large} bytes over 10x events"
    )


def figure_parity(workload: str) -> tuple[str, str, str]:
    system = build_case_study()
    if workload == "figure3":
        from repro.workloads.network_recv import network_receive

        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=20),
            label="TCP receive (Figure 3)",
        )
    else:
        from repro.workloads.forkexec import fork_exec_storm

        capture = system.profile(
            lambda: fork_exec_storm(system.kernel, iterations=2),
            label="fork/exec storm (Figure 5)",
        )
    batch = system.summarize(capture).format()
    streamed = system.summarize_streaming(capture).format()
    sharded = system.summarize_sharded(
        capture, workers=4, max_shard_events=2048
    ).summary.format()
    return batch, streamed, sharded


def test_figure3_reports_byte_identical(benchmark, comparison):
    batch, streamed, sharded = once(benchmark, figure_parity, "figure3")
    comparison.row("Figure 3 stream == batch", "identical", streamed == batch)
    comparison.row("Figure 3 sharded == batch", "identical", sharded == batch)
    assert streamed == batch
    assert sharded == batch


def test_figure5_reports_byte_identical(benchmark, comparison):
    batch, streamed, sharded = once(benchmark, figure_parity, "figure5")
    comparison.row("Figure 5 stream == batch", "identical", streamed == batch)
    comparison.row("Figure 5 sharded == batch", "identical", sharded == batch)
    assert streamed == batch
    assert sharded == batch
