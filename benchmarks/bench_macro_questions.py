"""MACRO — the paper's three macro-profiling questions, answered.

"Virtually all kernel code paths traverse these higher level routines, so
it is possible to get a broad-brush view of system performance to answer
questions like, 'How long does it take to fork/exec a process?'  Or 'How
long does it take to read this file?'  Or 'How long does it take to open
a TCP connection?'"

One benchmark per question, each answered from a macro capture of the
syscall/vnode layer — the whole point of the instrument-everything mode.
"""

from __future__ import annotations

from paperbench import ms, once, us

from repro.system import build_case_study
from repro.workloads.fileio import file_read_back
from repro.workloads.forkexec import fork_exec_storm
from repro.workloads.network_send import network_send


def run_all_three():
    forkexec_system = build_case_study()
    forkexec = fork_exec_storm(forkexec_system.kernel, iterations=2)

    file_system = build_case_study()
    reads = file_read_back(file_system.kernel, nblocks=6)

    net_system = build_case_study()
    send = network_send(net_system.kernel, total_bytes=8 * 1024)
    return forkexec, reads, send


def test_macro_questions(benchmark, comparison):
    forkexec, reads, send = once(benchmark, run_all_three)

    # Q1: "How long does it take to fork/exec a process?" — ~52 ms.
    comparison.row(
        "fork/exec a process", ms(52_000), ms(forkexec.mean_pair_us)
    )
    assert 32_000 <= forkexec.mean_pair_us <= 70_000

    # Q2: "How long does it take to read this file?" — a cold 8 KB block
    # is seek-bound at ~20 ms.
    comparison.row("read a (cold) file block", "18-26 ms", ms(reads.mean_op_us))
    assert 12_000 <= reads.mean_op_us <= 30_000

    # Q3: "How long does it take to open a TCP connection?" — the
    # handshake over a quiet Ethernet is a couple of milliseconds.
    comparison.row("open a TCP connection", "measurable", us(send.connect_us))
    assert 300 <= send.connect_us <= 20_000
    # And the answers come from one selective-profiling build each, with
    # the workload completing correctly:
    assert send.bytes_sent == send.sink_bytes == 8 * 1024
