"""FORK — fork/exec latency.

Paper: "it takes some 24 milliseconds to perform a vfork operation, and
it takes about 28 milliseconds to perform an execve system call.  This
adds to about 52 milliseconds to perform a combined fork/exec operation.
Note that these times do not include any disk activity, as the process
image was already cached. ... pmap_pte is called 1053 times when a fork
is executed, and a similar amount when an exec is done."
"""

from __future__ import annotations

from paperbench import ms, once

from repro.analysis.summary import summarize
from repro.system import build_case_study
from repro.workloads.forkexec import fork_exec_storm
from repro.kernel.vm.vm_glue import ExecImage


def run_forkexec():
    system = build_case_study()
    capture = system.profile(
        lambda: fork_exec_storm(system.kernel, iterations=4)
    )
    summary = summarize(system.analyze(capture))
    return system, summary


def test_forkexec_latency(benchmark, comparison):
    system = build_case_study()
    result = once(
        benchmark, fork_exec_storm, system.kernel, iterations=4
    )

    comparison.row("vfork", ms(24_000), ms(result.mean_fork_us))
    comparison.row("execve", ms(28_000), ms(result.mean_exec_us))
    comparison.row("fork+exec pair", ms(52_000), ms(result.mean_pair_us))
    assert 12_000 <= result.mean_fork_us <= 34_000
    assert 18_000 <= result.mean_exec_us <= 40_000
    assert 32_000 <= result.mean_pair_us <= 70_000
    # Exec costs more than fork, as in the paper.
    assert result.mean_exec_us > result.mean_fork_us

    # The pmap_pte storm: each fork walks every mapped range page by page.
    walked = ExecImage(name="sh").mapped_pages
    comparison.row("pmap_pte walk per fork", 1_053, walked)
    assert 900 <= walked <= 1_200

    # No disk activity: the image was cached (warm-up writes excepted).
    reads_before = system.kernel.filesystem.disk.reads
    fork_exec_storm(system.kernel, iterations=1)
    comparison.row(
        "disk reads during fork/exec", 0, system.kernel.filesystem.disk.reads - reads_before
    )
    assert system.kernel.filesystem.disk.reads == reads_before
