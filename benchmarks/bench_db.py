"""DB — profile corpus ingest throughput and diff latency.

The ``repro db`` pipeline end to end: a synthetic corpus of repeated
baseline runs plus an equal pool of seeded-slowdown candidates is
ingested into a fresh sqlite database, re-ingested (the idempotence
contract: zero rows added), and then diffed label-against-label.
Reported: ingest captures/sec, the no-op re-ingest cost, and the diff
wall time.  Asserted before any timing claim:

* re-ingest adds nothing — every capture is recognised by content
  fingerprint;
* the seeded regression is confirmed at exit code 2;
* the diff JSON document is byte-identical when the corpus is ingested
  in reverse order into a second database (ingest-order determinism).

Environment knobs::

    REPRO_DB_RUNS       runs per side (default 25; >= 3 for a noise
                        estimate)
    REPRO_DB_CALLS      work/spin call pairs per run (default 200)
    REPRO_DB_BENCH_OUT  where to write BENCH_db.json
                        (default: BENCH_db.json in the cwd)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from paperbench import once

from repro.atomicio import write_text_atomic
from repro.db import connect, diff_runs, ingest_paths, render_diff_json
from repro.instrument.namefile import NameTable
from repro.instrument.tags import TagEntry
from repro.profiler.ram import RawRecord
from repro.profiler.upload import clear_meta_cache, write_capture_file

MASK = (1 << 24) - 1

BASELINE_SPIN_US = 100
CANDIDATE_SPIN_US = 300


def db_runs() -> int:
    return int(os.environ.get("REPRO_DB_RUNS", 25))


def db_calls() -> int:
    return int(os.environ.get("REPRO_DB_CALLS", 200))


def _db_names() -> NameTable:
    table = NameTable()
    table.add(TagEntry(name="main", value=500))
    table.add(TagEntry(name="work", value=502))
    table.add(TagEntry(name="spin", value=506))
    table.add(TagEntry(name="swtch", value=504, context_switch=True))
    return table


DB_NAMES = _db_names()


def _run_records(run: int, spin_us: int, calls: int) -> list[RawRecord]:
    """Deterministic records for one run (no RNG).

    ``main`` wraps *calls* work/spin pairs; ``work`` holds ~100 us while
    ``spin`` takes *spin_us* — the seeded-slowdown knob.  Small per-run
    jitter gives each label pool a real noise estimate.
    """
    main = DB_NAMES.by_name("main")
    work = DB_NAMES.by_name("work")
    spin = DB_NAMES.by_name("spin")
    jitter = run % 3
    # Distinct start offset per run: every capture is byte-distinct (a
    # unique fingerprint) while all durations — and thus the summaries
    # being pooled — shift only by the jitter term.
    t = run * 17
    records = [RawRecord(tag=main.entry_value, time=t & MASK)]
    for _ in range(calls):
        t += 10
        records.append(RawRecord(tag=work.entry_value, time=t & MASK))
        t += 100 + jitter
        records.append(RawRecord(tag=work.exit_value, time=t & MASK))
        t += 10
        records.append(RawRecord(tag=spin.entry_value, time=t & MASK))
        t += spin_us + jitter
        records.append(RawRecord(tag=spin.exit_value, time=t & MASK))
    t += 10
    records.append(RawRecord(tag=main.exit_value, time=t & MASK))
    return records


def build_corpus(root: Path, runs: int, calls: int) -> list[Path]:
    root.mkdir(parents=True, exist_ok=True)
    for label, spin_us in (
        ("baseline", BASELINE_SPIN_US),
        ("candidate", CANDIDATE_SPIN_US),
    ):
        for run in range(runs):
            write_capture_file(
                root / f"{label}_{run:03d}.mpf",
                _run_records(run, spin_us, calls),
                label=label,
            )
    return sorted(root.glob("*.mpf"))


def _ingest(db_path: Path, captures: list[Path]) -> tuple[float, int, int]:
    conn = connect(db_path)
    try:
        start = time.perf_counter()
        results = ingest_paths(conn, captures, DB_NAMES, workload="bench")
        elapsed = time.perf_counter() - start
    finally:
        conn.close()
    added = sum(1 for r in results if r.status in ("added", "salvaged"))
    skipped = sum(1 for r in results if r.status == "duplicate")
    assert all(r.ok for r in results)
    return elapsed, added, skipped


def run_db_pipeline(root: Path, runs: int, calls: int) -> dict:
    captures = build_corpus(root / "corpus", runs, calls)
    db_path = root / "profiles.db"

    clear_meta_cache()
    ingest_s, added, _ = _ingest(db_path, captures)
    assert added == len(captures), f"first ingest added {added}"
    reingest_s, re_added, re_skipped = _ingest(db_path, captures)
    assert re_added == 0 and re_skipped == len(captures), (
        f"re-ingest added {re_added}, skipped {re_skipped} "
        f"(idempotence broken)"
    )

    conn = connect(db_path)
    try:
        start = time.perf_counter()
        report = diff_runs(conn, "label:baseline", "label:candidate")
        diff_s = time.perf_counter() - start
        assert report.exit_code == 2, (
            f"seeded regression missed: exit {report.exit_code}"
        )
        diff_doc = render_diff_json(report)
    finally:
        conn.close()

    # Ingest-order determinism: the reversed corpus must produce the
    # exact same diff document from a second database.
    reversed_db = root / "reversed.db"
    conn = connect(reversed_db)
    try:
        for capture in reversed(captures):
            ingest_paths(conn, [capture], DB_NAMES, workload="bench")
        reversed_doc = render_diff_json(
            diff_runs(conn, "label:baseline", "label:candidate")
        )
    finally:
        conn.close()
    assert reversed_doc == diff_doc, "diff depends on ingest order"

    return {
        "captures": len(captures),
        "calls_per_run": calls,
        "ingest_s": ingest_s,
        "captures_per_sec": len(captures) / ingest_s,
        "reingest_s": reingest_s,
        "diff_s": diff_s,
        "diff_exit_code": report.exit_code,
        "idempotent": True,
        "order_independent": True,
    }


def test_db_pipeline(benchmark, comparison, tmp_path):
    runs = db_runs()
    calls = db_calls()
    result = once(benchmark, run_db_pipeline, tmp_path, runs, calls)

    comparison.row("corpus size", f"{2 * runs} captures", result["captures"])
    comparison.row("calls per run", str(calls), result["calls_per_run"])
    comparison.row(
        "ingest",
        "--",
        f"{result['ingest_s']:.2f} s "
        f"({result['captures_per_sec']:.0f} cap/s)",
    )
    comparison.row("re-ingest (no-op)", "--", f"{result['reingest_s']:.3f} s")
    comparison.row("label-vs-label diff", "--", f"{result['diff_s']:.3f} s")
    comparison.row("seeded regression", "exit 2", result["diff_exit_code"])
    comparison.row("re-ingest adds", "0 rows", result["idempotent"])
    comparison.row(
        "diff vs ingest order", "byte-identical", result["order_independent"]
    )

    out_path = os.environ.get("REPRO_DB_BENCH_OUT", "BENCH_db.json")
    document = {
        "benchmark": "db_pipeline",
        "baseline_spin_us": BASELINE_SPIN_US,
        "candidate_spin_us": CANDIDATE_SPIN_US,
        **result,
    }
    write_text_atomic(out_path, json.dumps(document, indent=1))
