"""Benchmark fixtures (helpers live in paperbench)."""

from __future__ import annotations

import pytest

from paperbench import PaperComparison


@pytest.fixture
def comparison(request):
    """A PaperComparison that prints itself when the test ends."""
    table = PaperComparison(title=request.node.name)
    yield table
    if table.rows:
        table.emit()
