"""CLK — the clock-interrupt measurements.

Paper: "the regular clock tick interrupt took on average 94 microseconds
to execute ... The interrupt code overhead to [emulate software
interrupts] is around 24 microseconds per interrupt."

The run profiles an otherwise-idle system so the only activity is the
100 Hz tick train; the ISAINTR inclusive average is the full tick cost,
and the AST-emulation share is read straight from the cost model the
dispatch path charges.
"""

from __future__ import annotations

from paperbench import once, pct, us

from repro.analysis.summary import summarize
from repro.kernel.sched import tsleep
from repro.kernel.syscalls import syscall
from repro.system import build_case_study


def run_idle_profile():
    system = build_case_study()
    kernel = system.kernel

    def idle_run():
        def body(k, proc):
            for _ in range(30):
                yield from tsleep(k, ("nap", proc.pid), timo=3)
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("napper", body)
        kernel.sched.run()

    capture = system.profile(idle_run, label="idle system (clock ticks)")
    analysis = system.analyze(capture)
    return system, analysis, summarize(analysis)


def test_clock_interrupt_cost(benchmark, comparison):
    system, analysis, summary = once(benchmark, run_idle_profile)

    isaintr = summary.get("ISAINTR")
    hardclock = summary.get("hardclock")
    gatherstats = summary.get("gatherstats")
    assert isaintr is not None and hardclock is not None

    comparison.row("clock tick total", us(94), us(isaintr.avg_us))
    assert 70 <= isaintr.avg_us <= 120

    ast_us = system.kernel.cost.ast_emulation_ns / 1_000
    comparison.row("AST emulation share", us(24), us(ast_us))
    assert 20 <= ast_us <= 28
    # The AST emulation really is charged inside the tick.
    assert isaintr.avg_us > hardclock.avg_us + ast_us * 0.8

    comparison.row(
        "hardclock (incl gatherstats)", "~55 us", us(hardclock.avg_us)
    )
    assert gatherstats.calls == hardclock.calls

    # An idle machine is nearly all idle time.
    comparison.row("idle fraction", "~99%", pct(100 * (1 - analysis.busy_fraction)))
    assert analysis.busy_fraction <= 0.05
