"""HW — the Profiler board's envelope and the ablation sweeps.

Paper hardware facts: 16-bit tags (65536 values), 24-bit 1 MHz counter
("a maximum time of 16 seconds between events"), 16384-event RAM with the
overflow LED, the $100 bill of materials, and the future-work knobs (a
wider/faster counter for "upmarket workstation" use, more RAM).
"""

from __future__ import annotations

from paperbench import once

from repro.profiler.counter import MicrosecondCounter
from repro.profiler.hardware import ProfilerBoard
from repro.profiler.ram import TAG_MASK, TIME_MASK
from repro.system import build_case_study
from repro.workloads.network_recv import network_receive


def test_hardware_envelope(benchmark, comparison):
    board = once(benchmark, ProfilerBoard)
    comparison.row("event tags", 65_536, TAG_MASK + 1)
    comparison.row("counter wrap", "16 s", f"{board.counter.max_gap_us / 1e6:.1f} s")
    comparison.row("RAM depth", 16_384, board.ram.depth)
    comparison.row("chip count", 13, sum(ProfilerBoard.CHIP_COUNT.values()))
    assert TAG_MASK + 1 == 65_536
    assert 16 <= board.counter.max_gap_us / 1e6 <= 17
    assert board.ram.depth == 16_384
    assert TIME_MASK == (1 << 24) - 1


def test_overflow_led_under_load(benchmark, comparison):
    def run_small_board():
        system = build_case_study(board_depth=2_048)
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=40)
        )
        return system, capture

    system, capture = once(benchmark, run_small_board)
    comparison.row("overflow stops storage", "LED latches", capture.overflowed)
    assert capture.overflowed
    assert len(capture) == 2_048
    # The latch holds until the board is power-cycled (the next session's
    # reset), so the operator can see the run overflowed.
    assert system.board.overflow_led is True
    system.board.reset()
    assert system.board.overflow_led is False


def test_counter_ablation_sweep(benchmark, comparison):
    """Future work: "A higher clock precision has been considered ...
    this would entail fitting a wider RAM module"."""

    def sweep():
        results = {}
        for width, rate in ((24, 1_000_000), (32, 1_000_000), (24, 10_000_000)):
            counter = MicrosecondCounter(width_bits=width, rate_hz=rate)
            results[(width, rate)] = counter.max_gap_us / 1e6
        return results

    results = once(benchmark, sweep)
    comparison.row("24-bit @ 1 MHz wrap", "16.8 s", f"{results[(24, 1_000_000)]:.1f} s")
    comparison.row("32-bit @ 1 MHz wrap", "~71 min", f"{results[(32, 1_000_000)]:.0f} s")
    comparison.row("24-bit @ 10 MHz wrap", "1.7 s", f"{results[(24, 10_000_000)]:.2f} s")
    # The paper's scepticism about a faster clock: it costs wrap headroom.
    assert results[(24, 10_000_000)] < results[(24, 1_000_000)]
    # The wider RAM module buys it back.
    assert results[(32, 1_000_000)] > 60 * results[(24, 1_000_000)]


def test_higher_precision_capture_still_analyses(benchmark):
    """A 10 MHz, 32-bit Profiler (the upmarket-workstation variant)
    produces captures the same analysis pipeline consumes."""

    def run_fast_board():
        from repro.profiler.hardware import ProfilerBoard

        counter = MicrosecondCounter(width_bits=32, rate_hz=10_000_000)
        board = ProfilerBoard(depth=16_384, counter=counter)
        from repro.profiler.eprom import PiggyBackAdapter
        from repro.instrument.compiler import InstrumentingCompiler
        from repro.kernel import import_all
        from repro.kernel.kernel import Kernel
        from repro.kernel.kfunc import registered_functions

        import_all()
        kernel = Kernel()
        kernel.attach_profiler(PiggyBackAdapter(board))
        image = InstrumentingCompiler().compile(registered_functions())
        image.install(kernel)
        kernel.boot()
        from repro.profiler.capture import CaptureSession

        session = CaptureSession(board, image.names, label="10 MHz board")
        with session:
            network_receive(kernel, total_packets=10)
        return session.capture

    capture = once(benchmark, run_fast_board)
    assert capture.counter_rate_hz == 10_000_000
    from repro.analysis.summary import summarize
    from repro.analysis.callstack import analyze_capture
    from repro.analysis.events import decode_capture, reconstruct_times

    # Decode with the right width: intervals are in 0.1 us ticks.
    times = reconstruct_times(capture.records, width_bits=32)
    assert times == sorted(times)
    summary = summarize(analyze_capture(capture))
    assert summary.get("bcopy") is not None
