"""TTY — "the time taken to process character input interrupts".

The paper poses this as the question software-only profiling cannot
answer ("But what happens if ... you wish to measure the time taken to
process character input interrupts?").  The Profiler answers it directly:
arm the board, type, read the per-character breakdown out of the capture.
No paper numbers exist for this one — the benchmark demonstrates the
*capability* and pins the measured decomposition so it stays stable.
"""

from __future__ import annotations

from paperbench import once, us

from repro.analysis.summary import summarize
from repro.system import build_case_study
from repro.workloads.ttyio import attach_tty, type_and_read


TEXT = "profiling characters one interrupt at a time\n" * 4


def run_typing_profile():
    system = build_case_study()
    attach_tty(system.kernel)
    capture = system.profile(
        lambda: type_and_read(system.kernel, text=TEXT),
        label="character input",
    )
    return system, summarize(system.analyze(capture))


def test_character_input_interrupt_cost(benchmark, comparison):
    system, summary = once(benchmark, run_typing_profile)

    comintr = summary.get("comintr")
    ttyin = summary.get("ttyinput")
    ttyout = summary.get("ttyoutput")
    isaintr = summary.get("ISAINTR")
    comparison.row("characters processed", len(TEXT), comintr.calls)
    comparison.row("UART service (comintr incl)", "measurable", us(comintr.avg_us))
    comparison.row("line discipline (ttyinput incl)", "measurable", us(ttyin.avg_us))
    comparison.row("echo (ttyoutput incl)", "measurable", us(ttyout.avg_us))

    # One interrupt per character, each fully decomposed.
    assert comintr.calls == len(TEXT)
    assert ttyin.calls == comintr.calls
    # The decomposition nests: interrupt > UART service > discipline > echo.
    assert isaintr.avg_us > comintr.avg_us > ttyin.avg_us > ttyout.avg_us
    # Total per-character cost is tens of microseconds — far below what a
    # sampling profiler could resolve at any sane rate.
    assert 30 <= comintr.avg_us <= 160
    # The reader slept between lines: idle time shows the keystroke gaps.
    assert summary.idle_fraction > 0.5
