"""BUS — the I/O-architecture ablations the paper asks for.

Three explicit wishes from the text, each run as an experiment:

* "It would be instructive to profile different controller cards to
  determine where each performed best; when support for EISA cards is
  available it would be interesting to see what performance gain would be
  obtained using the higher bandwidth bus" — we swap the WD8003E's 8-bit
  packet RAM for a 16-bit (WD8013-class) and a main-memory-speed
  (bus-master/EISA-class) variant;
* "a much faster I/O architecture is required before serious data
  throughput can be expected" — the sweep shows the receive path's cost
  collapsing as the bus widens;
* "It would be interesting to use a different type of controller (maybe
  one with DMA)" for the disk — the per-sector PIO copy is zeroed and the
  write-side CPU share drops accordingly.
"""

from __future__ import annotations

from paperbench import once, pct, us

from repro.sim.cpu import CostModel
from repro.system import build_case_study
from repro.workloads.fileio import file_write_storm
from repro.workloads.network_recv import network_receive

PACKETS = 30


def receive_cost(cost: CostModel | None) -> float:
    system = build_case_study(cost=cost)
    run = network_receive(system.kernel, total_packets=PACKETS)
    assert run.bytes_received == PACKETS * 1024
    return run.elapsed_us / run.packets_sent


def run_nic_sweep():
    stock = receive_cost(None)
    # WD8013-class: same card, 16-bit ISA packet RAM.
    sixteen_bit = receive_cost(CostModel(isa8_read_ns=260, isa8_write_ns=280))
    # EISA/bus-master class: packet lands in main memory.
    fast_bus = receive_cost(CostModel(isa8_read_ns=26, isa8_write_ns=40))
    return stock, sixteen_bit, fast_bus


def test_nic_bus_ablation(benchmark, comparison):
    stock, sixteen_bit, fast_bus = once(benchmark, run_nic_sweep)
    comparison.row("packet cost, 8-bit WD8003E", "~2000 us", us(stock))
    comparison.row("packet cost, 16-bit card", "a gain", us(sixteen_bit))
    comparison.row("packet cost, EISA/bus-master", "big gain", us(fast_bus))

    assert fast_bus < sixteen_bit < stock
    # The 8->16 bit step removes roughly half the driver copy.
    assert sixteen_bit < stock - 300
    # With a fast bus the checksum becomes the whole story (the driver
    # copy's ~800 us/packet collapses to ~40 us).
    assert fast_bus < stock * 0.75


def test_disk_dma_ablation(benchmark, comparison):
    def run_pair():
        pio_system = build_case_study()
        pio_capture = pio_system.profile(
            lambda: file_write_storm(pio_system.kernel, nblocks=12)
        )
        pio_busy = pio_system.analyze(pio_capture).busy_fraction

        # "maybe one with DMA": sector transfers stop crossing the CPU.
        dma_system = build_case_study(
            cost=CostModel(isa16_read_ns=0, isa16_write_ns=0)
        )
        dma_capture = dma_system.profile(
            lambda: file_write_storm(dma_system.kernel, nblocks=12)
        )
        dma_busy = dma_system.analyze(dma_capture).busy_fraction
        return pio_busy, dma_busy

    pio_busy, dma_busy = once(benchmark, run_pair)
    comparison.row("CPU busy, PIO IDE", pct(28), pct(100 * pio_busy))
    comparison.row("CPU busy, DMA controller", "lower", pct(100 * dma_busy))
    assert dma_busy < pio_busy * 0.75


def test_driver_recode_case_study(benchmark, comparison):
    """The 68020 case study: "in one case the recoding of an Ethernet
    driver doubled the network throughput."  The un-recoded driver bounces
    every frame through a staging buffer (two ISA copies); the recode
    copies straight into mbufs."""

    def run_pair():
        def driver_time(cost: CostModel | None) -> float:
            from repro.analysis.summary import summarize

            system = build_case_study(cost=cost)
            capture = system.profile(
                lambda: network_receive(system.kernel, total_packets=20)
            )
            summary = summarize(system.analyze(capture))
            weintr = summary.get("weintr")
            # Driver-level cost per received packet (the case study's
            # measurement: driver path only, before/after the recode).
            return weintr.elapsed_us / 20

        naive = driver_time(CostModel(naive_driver=True))
        recoded = driver_time(None)
        return naive, recoded

    naive, recoded = once(benchmark, run_pair)
    comparison.row("driver path, original", "2x the recode", us(naive))
    comparison.row("driver path, recoded", "(baseline)", us(recoded))
    speedup = naive / recoded
    comparison.row("driver throughput gain", "~2x", f"{speedup:.2f}x")
    assert 1.6 <= speedup <= 2.4
