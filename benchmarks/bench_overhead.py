"""OVH — the instrumentation-overhead claims.

Paper: "Adding event tag triggers to software will have a small impact on
performance; this has been calculated at around 1 to 1.2% extra CPU
cycles ... about 400 nanoseconds per function for a 40 MHz 386.  The size
of the software also increases by the overhead of two instructions per
function."  Case-study scale: 1392 C functions -> 2784 trigger points,
plus 35 assembler routines = 1427 profiled functions; the RAM (16384
events) "could be filled in as short a time as 300 milliseconds".
"""

from __future__ import annotations

from paperbench import once, pct

from repro.instrument.compiler import (
    InstrumentingCompiler,
    TRIGGERS_PER_FUNCTION,
)
from repro.kernel.kfunc import registered_functions
from repro.system import build_case_study
from repro.workloads.network_recv import network_receive


def run_overhead_pair():
    instrumented = build_case_study()
    with_triggers = network_receive(instrumented.kernel, total_packets=25)
    plain = build_case_study(instrument=False)
    without = network_receive(plain.kernel, total_packets=25)
    return instrumented, with_triggers, without


def test_instrumentation_overhead(benchmark, comparison):
    instrumented, with_triggers, without = once(benchmark, run_overhead_pair)

    overhead = (
        with_triggers.elapsed_us - without.elapsed_us
    ) / without.elapsed_us
    comparison.row("trigger CPU overhead", "1-1.2%", pct(100 * overhead))
    assert 0.002 <= overhead <= 0.03

    trigger_ns = instrumented.kernel.cost.trigger_ns * TRIGGERS_PER_FUNCTION
    comparison.row("trigger cost per function", "400 ns", f"{trigger_ns} ns")
    assert trigger_ns == 400

    # Identical results either way ("No noticeable difference").
    assert with_triggers.bytes_received == without.bytes_received


def test_kernel_scale_and_fill_rate(benchmark, comparison):
    def build_and_fill():
        system = build_case_study()
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=200)
        )
        return system, capture

    system, capture = once(benchmark, build_and_fill)

    image = system.image
    comparison.row(
        "profiled functions", "1427 (1392 C + 35 asm)", image.profiled_functions
    )
    comparison.row(
        "trigger points", 2_784 + 70, image.trigger_points
    )
    # Our miniature kernel is smaller than 386BSD but the same order of
    # structure: >100 functions, entry+exit points for each.
    assert image.profiled_functions >= 100
    assert image.trigger_points >= 2 * image.profiled_functions

    # Fill rate: heavy receive load fills 16384 events well inside 1 s.
    assert capture.overflowed or len(capture) == 16384 or len(capture) > 10_000
    if capture.overflowed:
        from repro.analysis.events import decode_capture

        events = decode_capture(capture)
        fill_ms = events[-1].time_us / 1_000
        comparison.row("16384-event fill time", "~300 ms", f"{fill_ms:.0f} ms")
        assert fill_ms <= 1_000

    # Code growth: two 6-byte instructions per function.
    comparison.row(
        "code growth", "2 insns/function",
        f"{image.code_growth_bytes} bytes",
    )
    assert image.code_growth_bytes == image.trigger_points * 6


def test_compiler_overhead_estimate(benchmark, comparison):
    compiler = InstrumentingCompiler()
    image = once(benchmark, compiler.compile, registered_functions())
    estimate = compiler.overhead_estimate(
        image, trigger_ns=200, mean_function_ns=36_000
    )
    comparison.row("static overhead estimate", "1-1.2%", pct(100 * estimate))
    assert 0.005 <= estimate <= 0.02
