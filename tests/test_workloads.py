"""Tests for the case-study workloads (deterministic end-to-end runs)."""

from __future__ import annotations

import pytest

from repro.system import build_case_study
from repro.workloads.fileio import file_read_back, file_write_storm
from repro.workloads.forkexec import fork_exec_storm
from repro.workloads.mixed import mixed_activity
from repro.workloads.network_recv import SparcSender, network_receive
from repro.workloads.nfsio import nfs_read_stream


class TestNetworkReceive:
    def test_all_bytes_arrive(self):
        system = build_case_study()
        result = network_receive(system.kernel, total_packets=12)
        assert result.bytes_received == 12 * 1024
        assert result.packets_sent == 12
        assert result.reads > 0

    def test_cpu_saturated(self):
        """Paper: "This was the only test that caused the PC to be
        totally CPU bound ... the CPU was busy 100% of the time"."""
        system = build_case_study()
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=25)
        )
        analysis = system.analyze(capture)
        assert analysis.busy_fraction >= 0.95

    def test_packet_cost_band(self):
        """Paper: ~2000 us to process one (1 KB-payload) packet."""
        system = build_case_study()
        result = network_receive(system.kernel, total_packets=30)
        per_packet_us = result.elapsed_us / result.packets_sent
        assert 1_500 <= per_packet_us <= 3_200

    def test_sender_validation(self):
        with pytest.raises(ValueError):
            SparcSender(total_packets=0)

    def test_deterministic(self):
        first = build_case_study()
        r1 = network_receive(first.kernel, total_packets=8)
        second = build_case_study()
        r2 = network_receive(second.kernel, total_packets=8)
        assert r1.elapsed_us == r2.elapsed_us
        assert r1.bytes_received == r2.bytes_received


class TestForkExec:
    def test_latency_bands(self):
        """Paper: vfork ~24 ms, execve ~28 ms, pair ~52 ms."""
        system = build_case_study()
        result = fork_exec_storm(system.kernel, iterations=2)
        assert len(result.fork_us) == 2 and len(result.exec_us) == 2
        assert 12_000 <= result.mean_fork_us <= 34_000
        assert 18_000 <= result.mean_exec_us <= 40_000
        assert 32_000 <= result.mean_pair_us <= 70_000

    def test_children_reaped(self):
        system = build_case_study()
        fork_exec_storm(system.kernel, iterations=2)
        zombies = [
            p
            for p in system.kernel.sched.procs.all()
            if p.state.value == "zomb" and p.name != "forktest"
        ]
        assert zombies == []  # wait() reaped every child

    def test_console_prints_cause_scrolls(self):
        system = build_case_study()
        fork_exec_storm(system.kernel, iterations=2, print_status=True)
        assert system.kernel.console.scrolls >= 1


class TestFileIo:
    def test_write_storm_disk_bound(self):
        """Paper: "the CPU was only busy for 28% of the time when doing a
        large number of writes"."""
        system = build_case_study()
        capture = system.profile(lambda: file_write_storm(system.kernel, nblocks=16))
        analysis = system.analyze(capture)
        assert analysis.busy_fraction <= 0.55
        assert analysis.busy_fraction >= 0.15

    def test_write_storm_moves_all_bytes(self):
        system = build_case_study()
        result = file_write_storm(system.kernel, nblocks=10)
        assert result.bytes_moved == 10 * 8192
        assert system.kernel.filesystem.disk.writes >= 10 * 16

    def test_read_back_latency_band(self):
        """Paper: reads 18..26 ms each."""
        system = build_case_study()
        result = file_read_back(system.kernel, nblocks=10)
        mean_ms = result.mean_op_us / 1_000
        assert 14 <= mean_ms <= 28
        assert len(result.per_op_us) == 20

    def test_read_back_returns_real_data(self):
        system = build_case_study()
        result = file_read_back(system.kernel, nblocks=4)
        assert result.bytes_moved == 2 * 4 * 8192


class TestNfsIo:
    def test_stream_reads_whole_file(self):
        system = build_case_study()
        result = nfs_read_stream(system.kernel, file_bytes=24 * 1024)
        assert result.bytes_read == 24 * 1024
        assert result.rpc_turnaround_us

    def test_nfs_beats_ftp_without_checksums(self):
        """The paper's inversion: with UDP checksums off, NFS outruns an
        FTP-style TCP stream on this CPU-bound machine."""
        nfs_system = build_case_study()
        nfs = nfs_read_stream(nfs_system.kernel, file_bytes=48 * 1024)
        tcp_system = build_case_study()
        tcp = network_receive(tcp_system.kernel, total_packets=48)
        assert nfs.throughput_kbps > tcp.throughput_kbps

    def test_checksums_erase_the_advantage(self):
        without = nfs_read_stream(
            build_case_study().kernel, file_bytes=48 * 1024, with_checksums=False
        )
        with_ck = nfs_read_stream(
            build_case_study().kernel, file_bytes=48 * 1024, with_checksums=True
        )
        assert with_ck.throughput_kbps < without.throughput_kbps
        assert with_ck.bytes_read == without.bytes_read

    def test_bad_stream_count_rejected(self):
        with pytest.raises(ValueError):
            nfs_read_stream(
                build_case_study().kernel, file_bytes=1024, readahead_streams=0
            )


class TestMixed:
    def test_touches_every_subsystem(self):
        system = build_case_study()
        result = mixed_activity(system.kernel, rounds=3)
        assert result.faults == 3 * 8
        stats = system.kernel.stats
        assert stats["v_zfod"] >= result.faults
        assert stats["kmem_pages"] > 0
        assert system.kernel.filesystem.disk is not None
