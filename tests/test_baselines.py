"""Tests for the rejected-method baselines and their documented flaws."""

from __future__ import annotations

import pytest

from repro.baselines.benchmark_timing import ExternalBenchmark
from repro.baselines.clock_profiler import ClockProfiler
from repro.baselines.event_counters import snapshot_counters
from repro.kernel.intr import IPL_HIGH, splhigh, splx
from repro.kernel.sched import tsleep
from repro.kernel.syscalls import syscall
from repro.system import build_case_study
from repro.workloads.network_recv import network_receive


class TestClockProfiler:
    def test_samples_the_hot_function(self):
        """A sampler should at least see bcopy/in_cksum in the receive test."""
        system = build_case_study(instrument=False)
        sampler = ClockProfiler(rate_hz=2000)
        system.machine.attach(sampler)
        sampler.start(system.kernel)
        network_receive(system.kernel, total_packets=20)
        profile = sampler.stop()
        assert profile.total_samples > 20
        top_names = [name for name, _ in profile.top(6)]
        assert "bcopy" in top_names or "in_cksum" in top_names

    def test_overhead_grows_with_rate(self):
        """The paper's granularity/perturbation trade-off, measured."""
        slow_sys = build_case_study(instrument=False)
        slow = ClockProfiler(rate_hz=500)
        slow_sys.machine.attach(slow)
        slow.start(slow_sys.kernel)
        network_receive(slow_sys.kernel, total_packets=10)
        slow_profile = slow.stop()

        fast_sys = build_case_study(instrument=False)
        fast = ClockProfiler(rate_hz=8000)
        fast_sys.machine.attach(fast)
        fast.start(fast_sys.kernel)
        network_receive(fast_sys.kernel, total_packets=10)
        fast_profile = fast.stop()

        assert fast_profile.total_samples > slow_profile.total_samples
        assert fast_profile.overhead_ns > 4 * slow_profile.overhead_ns

    def test_perturbation_slows_the_workload(self):
        baseline_sys = build_case_study(instrument=False)
        baseline = network_receive(baseline_sys.kernel, total_packets=10)

        sampled_sys = build_case_study(instrument=False)
        sampler = ClockProfiler(rate_hz=10_000)
        sampled_sys.machine.attach(sampler)
        sampler.start(sampled_sys.kernel)
        sampled = network_receive(sampled_sys.kernel, total_packets=10)
        sampler.stop()
        assert sampled.elapsed_us > baseline.elapsed_us

    def test_masked_code_is_invisible(self):
        """The sampler cannot see inside spl-masked regions — exactly why
        the paper asks "what happens if one wishes to profile the clock
        interrupt code itself?"."""
        system = build_case_study(instrument=False)
        kernel = system.kernel
        sampler = ClockProfiler(rate_hz=5_000, ipl=IPL_HIGH)
        system.machine.attach(sampler)
        sampler.start(kernel)

        def body(k, proc):
            # 50 ms of work entirely under splhigh.
            s = splhigh(k)
            k.work(50_000_000)
            splx(k, s)
            yield from tsleep(k, "z", timo=1)
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("masked", body)
        kernel.sched.run(until_ns=30_000_000_000)
        profile = sampler.stop()
        # The masked section was ~all of the busy time, yet splhigh-level
        # samples only land after the level drops.
        assert profile.samples.get("splhigh", 0) == 0

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            ClockProfiler(rate_hz=0)


class TestEventCounters:
    def test_snapshot_diffs_counters(self):
        system = build_case_study()
        with snapshot_counters(system.kernel) as snap:
            network_receive(system.kernel, total_packets=8)
        profile = snap.profile
        assert profile is not None
        assert profile.deltas["tcp_rcvpack"] == 8
        assert profile.interval_us > 0
        assert profile.rate_per_second("tcp_rcvpack") > 0

    def test_no_time_attribution(self):
        """The documented flaw: counters cannot say *where* time went."""
        system = build_case_study()
        with snapshot_counters(system.kernel) as snap:
            network_receive(system.kernel, total_packets=4)
        text = snap.profile.format()
        assert "us" in text  # it knows the interval...
        assert "bcopy_bytes" in snap.profile.deltas  # ...and counts...
        # ...but there is no per-function time anywhere in the output.
        assert "% real" not in text and "net" not in text.lower()

    def test_format_lists_top_counters(self):
        system = build_case_study()
        with snapshot_counters(system.kernel) as snap:
            network_receive(system.kernel, total_packets=4)
        lines = snap.profile.format(limit=5).splitlines()
        assert len(lines) <= 6


class TestExternalBenchmark:
    def test_measures_throughput_only(self):
        system = build_case_study()
        bench = ExternalBenchmark(system.kernel)
        run = bench.measure(
            "ttcp-recv",
            lambda: network_receive(system.kernel, total_packets=8).bytes_received,
        )
        assert run.work_units == 8 * 1024
        assert run.per_second > 0
        report = bench.report()
        assert "ttcp-recv" in report
        # The method's blindness: no function names in its whole output.
        assert "bcopy" not in report and "in_cksum" not in report
