"""Tests for proflint, the static verifier of the tag->trigger->capture
chain.

The backbone is mutation testing: start from a known-good artifact (the
shipped name files, the real kernel source, the golden captures, the
case-study link), seed one deliberate corruption per test, and assert
the *exact* diagnostic code the corruption must produce.  A linter that
merely "finds problems" is useless for CI gating; one that names them
stably can be asserted against.

The flip side is the clean-run guarantee: every checked-in golden
capture and shipped name file must lint with zero errors, and the real
kernel source must pass the AST discipline pass.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.instrument.linker import KernelLayout, layout_for
from repro.instrument.namefile import NameTable, parse_name_file
from repro.instrument.tags import MAX_TAG, TagEntry
from repro.lint import (
    CODE_TABLE,
    LintOptions,
    LintReport,
    Severity,
    lint_capture_file,
    lint_kernel_source,
    lint_layout,
    lint_link,
    lint_name_file_text,
    lint_name_table,
    lint_paths,
    lint_records,
    lint_self_check,
    lint_source_text,
    render_json,
    render_text,
    verify_capture,
)
from repro.profiler.ram import RawRecord
from repro.sim.bus import ISA_HOLE_START

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_CAPTURES = sorted(GOLDEN_DIR.glob("*.mpf"))
GOLDEN_NAMES = GOLDEN_DIR / "case_study.tags"


def codes(report: LintReport) -> list[str]:
    return [diagnostic.code for diagnostic in report]


# -- pass 1: name/tag files --------------------------------------------------


class TestNamefileLint:
    def test_clean_paper_sample(self):
        report = lint_name_file_text("main/502\nswtch/600!\nMGET/1002=\n")
        assert report.ok and len(report) == 0

    def test_p001_conflicting_entries(self):
        report = lint_name_file_text("main/502\nmain/510\n")
        assert codes(report) == ["P001"]
        assert report[0].line == 2

    def test_p002_tag_value_collision(self):
        # 503 is main's exit tag; an inline claim on it collides.
        report = lint_name_file_text("main/502\nMFREE/503=\n")
        assert codes(report) == ["P002"]
        assert "main" in report[0].message

    def test_p003_odd_entry_tag(self):
        report = lint_name_file_text("broken/501\n")
        assert codes(report) == ["P003"]

    def test_p004_inline_and_context_switch(self):
        assert codes(lint_name_file_text("x/600!=\n")) == ["P004"]
        assert codes(lint_name_file_text("x/600=!\n")) == ["P004"]

    def test_p005_outside_tag_space(self):
        report = lint_name_file_text(f"huge/{MAX_TAG + 3}\n")
        assert codes(report) == ["P005"]
        assert codes(lint_name_file_text("negative/-2\n")) == ["P005"]

    def test_p006_near_exhaustion_is_warning(self):
        report = lint_name_file_text(f"last/{MAX_TAG - 1}\n")
        assert codes(report) == ["P006"]
        assert report[0].severity is Severity.WARNING
        assert report.ok  # warnings do not fail the run

    def test_p007_malformed_line(self):
        report = lint_name_file_text("no-slash-here\nf/notanumber\n")
        assert codes(report) == ["P007", "P007"]

    def test_p008_second_context_switch(self):
        report = lint_name_file_text("swtch/600!\nidle/700!\n")
        assert codes(report) == ["P008"]
        assert report[0].severity is Severity.WARNING

    def test_lint_keeps_going_past_defects(self):
        """Unlike the strict loader, the linter reports every defect in
        one pass — the whole point of re-walking the text."""
        text = "main/502\nmain/510\nbroken/501\nMFREE/503=\njunk\n"
        report = lint_name_file_text(text)
        assert codes(report) == ["P001", "P003", "P002", "P007"]

    def test_cross_file_collision_points_at_both_files(self, tmp_path):
        (tmp_path / "a.tags").write_text("main/502\n")
        (tmp_path / "b.tags").write_text("tcp_input/502\n")
        from repro.lint import lint_name_files

        report = lint_name_files([tmp_path / "a.tags", tmp_path / "b.tags"])
        # tcp_input claims 502 and 503; main owns both — two collisions.
        assert codes(report) == ["P002", "P002"]
        assert "a.tags" in report[0].message
        assert report[0].source.endswith("b.tags")

    def test_identical_line_in_two_files_is_clean(self, tmp_path):
        (tmp_path / "a.tags").write_text("main/502\n")
        (tmp_path / "b.tags").write_text("main/502\n")
        from repro.lint import lint_name_files

        report = lint_name_files([tmp_path / "a.tags", tmp_path / "b.tags"])
        assert report.ok and len(report) == 0

    def test_p009_dangling_tag(self):
        names = parse_name_file("main/502\nghost/504\n")
        report = lint_name_table(names, instrumented={"main"})
        assert codes(report) == ["P009"]
        assert "ghost" in report[0].message

    def test_p010_instrumented_but_unnamed(self):
        names = parse_name_file("main/502\n")
        report = lint_name_table(names, instrumented={"main", "tcp_input"})
        assert codes(report) == ["P010"]
        assert "tcp_input" in report[0].message

    def test_dummy_seed_entry_is_exempt(self):
        names = NameTable()
        names.seed(500)
        names.allocate("main")
        report = lint_name_table(names, instrumented={"main"})
        assert report.ok and len(report) == 0


# -- pass 2: kernel source AST -----------------------------------------------


LEAKY = """
class K:
    def f(self, kernel):
        kernel.enter("f")
        return 1
"""

SHIELDED = """
class K:
    def f(self, kernel):
        kernel.enter("f")
        try:
            return work()
        finally:
            kernel.leave("f")
"""

MULTI_PATH = """
def f(kernel, flag):
    kernel.enter("f")
    if flag:
        kernel.leave("f")
        return 1
    kernel.leave("f")
    return 2
"""

SPL_NO_RESTORE = """
def intr(kernel):
    s = splnet(kernel)
    kernel.queue.append(1)
"""

SPL_HELD_RETURN = """
def intr(kernel):
    s = splbio(kernel)
    if kernel.busy:
        return None
    splx(kernel, s)
    return kernel.pop()
"""

STRAY_LEAVE = """
def f(kernel):
    kernel.leave("f")
"""

RAISE_LEAKS = """
def f(kernel):
    kernel.enter("f")
    if kernel.bad:
        raise RuntimeError("boom")
    kernel.leave("f")
"""

LOOP_BREAK = """
def intr(kernel):
    s = splnet(kernel)
    while True:
        if kernel.empty():
            break
        kernel.pop()
    splx(kernel, s)
"""


class TestAstLint:
    def test_p101_enter_without_leave(self):
        report = lint_source_text(LEAKY, source="leaky.py")
        assert codes(report) == ["P101"]

    def test_try_finally_shield_is_clean(self):
        assert len(lint_source_text(SHIELDED)) == 0

    def test_multi_path_manual_leave_is_clean(self):
        """The swtch idiom: no finally, but every path leaves."""
        assert len(lint_source_text(MULTI_PATH)) == 0

    def test_p102_spl_raise_without_restore(self):
        report = lint_source_text(SPL_NO_RESTORE, source="intr.py")
        # The held-at-exit warning rides along with the never-restored error.
        assert sorted(codes(report)) == ["P102", "P103"]
        assert report.error_count == 1

    def test_p103_return_with_spl_held(self):
        report = lint_source_text(SPL_HELD_RETURN)
        assert codes(report) == ["P103"]
        assert report[0].severity is Severity.WARNING

    def test_p104_stray_leave(self):
        report = lint_source_text(STRAY_LEAVE)
        assert codes(report) == ["P104"]

    def test_p101_on_raise_path(self):
        report = lint_source_text(RAISE_LEAKS, source="raises.py")
        assert codes(report) == ["P101"]

    def test_spl_across_loop_break_is_clean(self):
        assert len(lint_source_text(LOOP_BREAK)) == 0

    def test_real_kernel_source_is_clean(self):
        """The discipline pass over the actual kernel tree: the shipped
        source is the calibration corpus and must stay clean."""
        report = lint_kernel_source()
        assert report.ok, render_text(report)
        assert len(report) == 0, render_text(report)


# -- pass 3: capture streams -------------------------------------------------


def _names() -> NameTable:
    return NameTable(
        [
            TagEntry("main", 500),
            TagEntry("read", 502),
            TagEntry("ISAINTR", 504),
            TagEntry("swtch", 600, context_switch=True),
        ]
    )


def R(tag: int, time: int) -> RawRecord:
    return RawRecord(tag=tag, time=time)


class TestStreamLint:
    def test_balanced_stream_is_clean(self):
        records = [R(500, 10), R(502, 20), R(503, 30), R(501, 40)]
        report = lint_records(records, _names())
        assert report.ok and len(report) == 0

    def test_p202_timer_regression(self):
        records = [R(500, 100), R(502, 90), R(503, 95), R(501, 110)]
        report = lint_records(records, _names())
        assert "P202" in codes(report)
        regression = next(d for d in report if d.code == "P202")
        assert regression.index == 1

    def test_p202_time_exceeds_counter_width(self):
        # A 16-bit board cannot have latched a 17-bit count.
        report = lint_records(
            [R(500, 1 << 17)], _names(), width_bits=16, ram_depth=None
        )
        assert "P202" in codes(report)

    def test_wraparound_is_not_a_regression(self):
        """The 24-bit counter wrapping once between records is normal."""
        top = (1 << 24) - 5
        records = [R(500, top), R(502, 3), R(503, 8), R(501, 12)]
        report = lint_records(records, _names())
        assert "P202" not in codes(report)

    def test_p203_unknown_tag(self):
        records = [R(500, 10), R(9998, 20), R(501, 30)]
        report = lint_records(records, _names())
        assert "P203" in codes(report)

    def test_p205_mismatched_exit_is_the_desync_signature(self):
        # exit of main while read is still the innermost open frame
        records = [R(500, 10), R(502, 20), R(501, 30), R(503, 40)]
        report = lint_records(records, _names())
        assert codes(report).count("P205") == 2
        assert not report.ok

    def test_p201_open_frames_at_eof(self):
        records = [R(500, 10), R(502, 20)]
        report = lint_records(records, _names())
        assert codes(report) == ["P201"]
        assert report[0].severity is Severity.WARNING

    def test_p204_full_trace_ram(self):
        records = [R(500, 2 * i) for i in range(4)] + [
            R(501, 100 + 2 * i) for i in range(4)
        ]
        report = lint_records(records, _names(), ram_depth=8)
        assert "P204" in codes(report)
        assert lint_records(records, _names(), ram_depth=None).ok

    def test_p206_interrupt_nesting_beyond_ipl_count(self):
        records = [R(504, 10 * i) for i in range(1, 9)]
        report = lint_records(records, _names())
        assert "P206" in codes(report)
        seven_deep = [R(504, 10 * i) for i in range(1, 8)]
        assert "P206" not in codes(lint_records(seven_deep, _names()))

    def test_p207_unmatched_swtch_exit(self):
        records = [R(601, 10)]
        report = lint_records(records, _names())
        assert "P207" in codes(report)

    def test_p200_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.mpf"
        data = GOLDEN_CAPTURES[0].read_bytes()
        path.write_bytes(data[: len(data) - 3])
        report = lint_capture_file(path, NameTable.read(GOLDEN_NAMES))
        assert codes(report) == ["P200"]

    def test_p200_bad_magic(self, tmp_path):
        path = tmp_path / "junk.mpf"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        report = lint_capture_file(path, NameTable())
        assert codes(report) == ["P200"]


# -- pass 4: the _ProfileBase link -------------------------------------------


class TestLinkLint:
    def test_good_layout_is_clean(self):
        layout = layout_for(1 << 20, ISA_HOLE_START + 0x30000)
        assert len(lint_layout(layout)) == 0

    def test_p301_eprom_outside_isa_hole(self):
        layout = KernelLayout(
            kernel_size=1 << 20,
            isa_window_va=0xFE0A0000,
            profile_base_va=0xFE0D0000,
            eprom_phys=0x200000,
        )
        assert codes(lint_layout(layout)) == ["P301"]

    def test_p305_two_pass_disagreement(self):
        good = layout_for(1 << 20, ISA_HOLE_START + 0x30000)
        skewed = KernelLayout(
            kernel_size=good.kernel_size,
            isa_window_va=good.isa_window_va,
            profile_base_va=good.profile_base_va + 0x1000,
            eprom_phys=good.eprom_phys,
        )
        assert codes(lint_layout(skewed)) == ["P305"]

    def test_p304_tag_space_spills_past_hole(self):
        layout = layout_for(1 << 20, 0x000F8000)
        assert codes(lint_layout(layout)) == ["P304"]

    def test_live_case_study_link_is_clean(self):
        from repro.system import build_case_study

        system = build_case_study()
        report = lint_link(system.kernel)
        assert report.ok and len(report) == 0, render_text(report)

    def test_p302_p303_p306_on_mutated_kernel(self):
        from repro.system import build_case_study

        system = build_case_study()
        kernel = system.kernel

        region = kernel.bus.find(kernel.profile_base_phys)
        tap, region.on_read = region.on_read, None
        try:
            assert codes(lint_link(kernel)) == ["P303"]
        finally:
            region.on_read = tap

        base = kernel.profile_base_phys
        kernel.profile_base_phys = 0x00300000  # unmapped, outside the hole
        try:
            assert codes(lint_link(kernel)) == ["P301", "P302"]
        finally:
            kernel.profile_base_phys = base

        kernel.profile_base_phys = None
        try:
            assert codes(lint_link(kernel)) == ["P306"]
        finally:
            kernel.profile_base_phys = base


# -- clean-run guarantees over shipped artifacts -----------------------------


class TestShippedArtifactsLintClean:
    @pytest.mark.parametrize(
        "capture", GOLDEN_CAPTURES, ids=lambda p: p.name
    )
    def test_golden_captures_have_zero_errors(self, capture):
        names = NameTable.read(GOLDEN_NAMES)
        report = lint_capture_file(capture, names)
        assert report.error_count == 0, render_text(report)

    def test_golden_namefile_is_clean(self):
        report = lint_paths(LintOptions(names=[GOLDEN_NAMES]))
        assert report.ok, render_text(report)

    def test_self_check_is_clean(self):
        report = lint_self_check()
        assert report.ok and len(report) == 0, render_text(report)

    def test_live_capture_verifies_clean(self):
        from repro.system import build_case_study
        from repro.workloads.fileio import file_write_storm

        system = build_case_study()
        capture = system.profile(
            lambda: file_write_storm(system.kernel, nblocks=4), label="t"
        )
        report = verify_capture(capture)
        assert report.error_count == 0, render_text(report)


# -- report plumbing ---------------------------------------------------------


class TestReporting:
    def test_every_code_has_table_entry_and_diagnostics_use_them(self):
        assert set(CODE_TABLE) == {
            f"P{n:03d}" for n in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
        } | {f"P{n}" for n in (101, 102, 103, 104)} | {
            f"P{n}"
            for n in (200, 201, 202, 203, 204, 205, 206, 207,
                      208, 209, 210, 211, 212, 213)
        } | {f"P{n}" for n in (301, 302, 303, 304, 305, 306)} | {
            f"P{n}" for n in (401, 402, 403, 404)
        } | {f"P{n}" for n in (501, 502, 503, 504, 505, 506)} | {
            f"P{n}" for n in (601, 602, 603, 604, 605)
        } | {f"P{n}" for n in (701, 702, 703, 704, 705)} | {
            f"P{n}" for n in (801, 802, 803)
        }

    def test_text_format_is_compiler_style(self):
        report = lint_name_file_text("main/510\nmain/502\n", source="k.tags")
        line = report[0].format()
        assert line.startswith("k.tags:2: error P001:")

    def test_exit_code_semantics(self):
        clean = lint_name_file_text("main/502\n")
        assert clean.exit_code == 0
        warn_only = lint_name_file_text(f"last/{MAX_TAG - 1}\n")
        assert warn_only.exit_code == 0 and warn_only.ok
        erroring = lint_name_file_text("main/502\nmain/504\n")
        assert erroring.exit_code == 1 and not erroring.ok

    def test_json_schema_is_stable(self):
        report = lint_name_file_text("main/510\nmain/502\n", source="k.tags")
        document = json.loads(render_json(report))
        assert document["version"] == 1
        assert document["tool"] == "proflint"
        assert document["ok"] is False
        assert document["counts"] == {"error": 1, "warning": 0, "info": 0}
        (diagnostic,) = document["diagnostics"]
        assert diagnostic == {
            "code": "P001",
            "severity": "error",
            "title": CODE_TABLE["P001"][1],
            "message": diagnostic["message"],
            "source": "k.tags",
            "line": 2,
            "index": None,
        }

    def test_reports_accumulate_across_passes(self):
        report = LintReport()
        lint_name_file_text("main/510\nmain/502\n", report=report)
        lint_records([R(9998, 10)], _names(), report=report)
        assert codes(report) == ["P001", "P203"]
