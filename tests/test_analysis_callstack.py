"""Tests for call-tree reconstruction and context-switch splitting."""

from __future__ import annotations

from repro.analysis.callstack import analyze_capture

from stream_helpers import stream


class TestSimpleNesting:
    def test_single_call(self, simple_names):
        analysis = analyze_capture(
            stream(simple_names, (">", "main", 0), ("<", "main", 100))
        )
        (root,) = analysis.roots
        assert root.name == "main"
        assert root.self_us == 100
        assert root.inclusive_us == 100
        assert root.closed and not root.truncated

    def test_nested_net_vs_elapsed(self, simple_names):
        """The paper's tcp_input example: elapsed includes subroutines,
        net excludes them."""
        analysis = analyze_capture(
            stream(
                simple_names,
                (">", "main", 0),
                (">", "read", 10),
                (">", "bcopy", 20),
                ("<", "bcopy", 70),
                ("<", "read", 90),
                ("<", "main", 100),
            )
        )
        (main,) = analysis.roots
        read = main.children[0]
        bcopy = read.children[0]
        assert main.inclusive_us == 100 and main.self_us == 20
        assert read.inclusive_us == 80 and read.self_us == 30
        assert bcopy.inclusive_us == 50 and bcopy.self_us == 50

    def test_sequential_siblings(self, simple_names):
        analysis = analyze_capture(
            stream(
                simple_names,
                (">", "main", 0),
                (">", "bcopy", 5),
                ("<", "bcopy", 15),
                (">", "cksum", 20),
                ("<", "cksum", 50),
                ("<", "main", 60),
            )
        )
        (main,) = analysis.roots
        assert [c.name for c in main.children] == ["bcopy", "cksum"]
        assert main.self_us == 60 - 10 - 30

    def test_inline_marks_attach_to_innermost(self, simple_names):
        analysis = analyze_capture(
            stream(
                simple_names,
                (">", "main", 0),
                (">", "read", 5),
                ("=", "MGET", 7),
                ("<", "read", 10),
                ("<", "main", 20),
            )
        )
        read = analysis.roots[0].children[0]
        assert read.inline_marks == [(7, "MGET")]


class TestContextSwitches:
    def test_idle_time_is_swtch_self(self, simple_names):
        """Paper: "The time in swtch itself is counted as CPU idle time,
        except when device interrupts occur"."""
        analysis = analyze_capture(
            stream(
                simple_names,
                (">", "main", 0),
                (">", "tsleep", 100),
                (">", "swtch", 120),
                # interrupt fires while idle: active, not idle
                (">", "intr", 200),
                ("<", "intr", 260),
                ("<", "swtch", 300),
                ("<", "tsleep", 310),
                ("<", "main", 400),
            )
        )
        # swtch self time: (200-120) + (300-260) = 120 us idle
        assert analysis.idle_us == 120
        assert analysis.busy_us == analysis.wall_us - 120
        assert analysis.context_switches == 1

    def test_suspended_stack_does_not_accumulate(self, simple_names):
        """While proc A sleeps and proc B runs, A's open frames gain no
        time (tsleep's "(22 us, 25 total)" in Figure 4)."""
        analysis = analyze_capture(
            stream(
                simple_names,
                # proc A runs, blocks
                (">", "main", 0),
                (">", "tsleep", 10),
                (">", "swtch", 20),
                ("<", "swtch", 30),      # switch in: next event is ENTRY
                # proc B (fresh stack) runs 1000 us
                (">", "read", 40),
                (">", "tsleep", 900),
                (">", "swtch", 910),
                ("<", "swtch", 1030),    # switch back to A (exit tsleep next)
                ("<", "tsleep", 1040),
                ("<", "main", 1100),
            )
        )
        (tsleep_a,) = [
            n
            for n in analysis.nodes_named("tsleep")
            if n.proc == analysis.roots[0].proc
        ]
        # A's tsleep: 10 us before swtch entry + 10 us after switch-in;
        # the 1000 us while B ran are not charged to it.
        assert tsleep_a.self_us == (20 - 10) + (1040 - 1030)
        # swtch subtree time is charged inside tsleep though:
        assert tsleep_a.inclusive_us == tsleep_a.self_us + 10  # first swtch frame

    def test_two_procs_resolved_by_matching_exit(self, simple_names):
        analysis = analyze_capture(
            stream(
                simple_names,
                (">", "main", 0),
                (">", "tsleep", 10),
                (">", "swtch", 20),
                ("<", "swtch", 50),
                (">", "read", 60),       # proc B starts fresh
                (">", "tsleep", 70),
                (">", "swtch", 80),
                ("<", "swtch", 100),
                ("<", "tsleep", 110),    # matches A's open tsleep
                ("<", "main", 150),
            )
        )
        procs = {root.proc for root in analysis.roots}
        assert len(procs) == 2
        main = analysis.nodes_named("main")[0]
        assert main.closed and main.exit_us == 150

    def test_single_proc_resumes_itself(self, simple_names):
        """One process sleeping and waking: the same stack resumes."""
        analysis = analyze_capture(
            stream(
                simple_names,
                (">", "main", 0),
                (">", "tsleep", 10),
                (">", "swtch", 20),
                ("<", "swtch", 500),
                ("<", "tsleep", 510),
                ("<", "main", 600),
            )
        )
        assert len({root.proc for root in analysis.roots}) == 1
        assert analysis.idle_us == 480

    def test_unmatched_swtch_exit_tolerated(self, simple_names):
        """Capture armed while the CPU was already idle inside swtch."""
        analysis = analyze_capture(
            stream(
                simple_names,
                ("<", "swtch", 100),
                (">", "main", 110),
                ("<", "main", 200),
            )
        )
        kinds = [a.kind for a in analysis.anomalies]
        assert "unmatched-swtch-exit" in kinds
        assert analysis.context_switches == 1


class TestTruncation:
    def test_unmatched_exit_synthesised(self, simple_names):
        analysis = analyze_capture(
            stream(
                simple_names,
                ("<", "read", 50),
                (">", "main", 60),
                ("<", "main", 100),
            )
        )
        synthetic = [n for n in analysis.nodes() if n.synthetic]
        assert len(synthetic) == 1 and synthetic[0].name == "read"
        assert any(a.kind == "unmatched-exit" for a in analysis.anomalies)

    def test_open_frames_closed_at_end(self, simple_names):
        analysis = analyze_capture(
            stream(
                simple_names,
                (">", "main", 0),
                (">", "read", 10),
            )
        )
        read = analysis.nodes_named("read")[0]
        assert read.truncated and read.exit_us == 10
        main = analysis.nodes_named("main")[0]
        assert main.truncated and main.exit_us == 10

    def test_missed_exit_recovery(self, simple_names):
        """An exit arriving for a function below the top closes the
        intervening frames (multi-exit-point tolerance)."""
        analysis = analyze_capture(
            stream(
                simple_names,
                (">", "main", 0),
                (">", "read", 10),
                (">", "bcopy", 20),
                ("<", "read", 40),   # bcopy's exit was never recorded
                ("<", "main", 60),
            )
        )
        assert any(a.kind == "missed-exit" for a in analysis.anomalies)
        bcopy = analysis.nodes_named("bcopy")[0]
        assert bcopy.truncated and bcopy.exit_us == 40
        main = analysis.nodes_named("main")[0]
        assert main.closed and not main.truncated

    def test_empty_capture(self, simple_names):
        analysis = analyze_capture(stream(simple_names))
        assert analysis.roots == [] and analysis.wall_us == 0


class TestConservation:
    def test_time_is_conserved(self, simple_names):
        """Wall time equals attributed frame time plus unattributed gaps."""
        capture = stream(
            simple_names,
            (">", "main", 0),
            (">", "bcopy", 10),
            ("<", "bcopy", 30),
            ("<", "main", 50),
            (">", "read", 80),      # 30 us gap outside any frame
            ("<", "read", 100),
        )
        analysis = analyze_capture(capture)
        attributed = sum(n.self_us for n in analysis.nodes())
        assert attributed + analysis.unattributed_us == analysis.wall_us

    def test_inclusive_equals_subtree_self(self, simple_names):
        capture = stream(
            simple_names,
            (">", "main", 0),
            (">", "read", 10),
            (">", "bcopy", 20),
            ("<", "bcopy", 45),
            ("<", "read", 70),
            (">", "cksum", 75),
            ("<", "cksum", 99),
            ("<", "main", 120),
        )
        analysis = analyze_capture(capture)
        for node in analysis.nodes():
            assert node.inclusive_us == sum(d.self_us for d in node.walk())


class TestShardBoundaryIdle:
    """Regression: a ``swtch`` entry as a shard's final event must not
    double-count the idle interval that crosses the cut."""

    def _records(self, simple_names):
        # Two scheduling blocks separated by 1000 us of idle.  The
        # quiescent cut lands after the first swtch ENTRY (event 3), so
        # that idle interval exists only as the planner's bridge.
        capture = stream(
            simple_names,
            ("<", "swtch", 100),
            (">", "main", 110),
            ("<", "main", 170),
            (">", "swtch", 180),    # shard 0 ends here; 1000 us idle follows
            ("<", "swtch", 1180),
            (">", "read", 1200),
            ("<", "read", 1260),
            (">", "swtch", 1300),
        )
        return capture

    def test_merged_idle_equals_batch_idle(self, simple_names):
        from repro.analysis.pipeline import analyze_sharded, plan_shards
        from repro.analysis.summary import summarize

        capture = self._records(simple_names)
        batch = summarize(analyze_capture(capture))

        plans = plan_shards(capture.records, simple_names, max_shard_events=4)
        assert len(plans) == 2
        assert plans[0].stop == 4          # cut right after the swtch entry
        assert plans[0].bridge_us == 1000  # the idle that crosses the cut

        merged = analyze_sharded(
            capture.records, simple_names, max_shard_events=4, workers=2
        )
        # The bridge is added exactly once: batch sees the 1000 us inside
        # its swtch frame, the shards see it only as the bridge — idle
        # must come out 1000, not 2000.
        assert merged.summary.idle_us == batch.idle_us
        assert merged.summary.wall_us == batch.wall_us
        assert merged.summary.format() == batch.format()

    def test_trailing_swtch_entry_stays_open_not_idle_twice(self, simple_names):
        """The open swtch frame at end-of-shard is closed at its last
        event time (zero extra idle), so merge() adds only the bridge."""
        from repro.analysis.pipeline import analyze_sharded
        from repro.analysis.summary import SummaryAccumulator

        capture = self._records(simple_names)
        solo = SummaryAccumulator(simple_names)
        solo.feed_records(capture.records[:4])
        solo.close()
        # Shard 0 alone sees zero idle: the leading swtch exit is
        # unmatched and the trailing entry closes with zero self time.
        assert solo.summary().idle_us == 0

        merged = analyze_sharded(
            capture.records, simple_names, max_shard_events=4, workers=1
        )
        batch = analyze_capture(capture)
        assert merged.summary.idle_us == batch.idle_us
