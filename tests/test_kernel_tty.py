"""Tests for the serial tty: input interrupts, line discipline, reads."""

from __future__ import annotations

import pytest

from repro.analysis.summary import summarize
from repro.kernel.drivers.tty import CERASE, CKILL, ComPort, Tty, ttyinput
from repro.kernel.kernel import Kernel
from repro.system import build_case_study
from repro.workloads.ttyio import attach_tty, type_and_read


def tty_kernel() -> tuple[Kernel, ComPort, Tty]:
    kernel = Kernel()
    kernel.boot(with_network=False, with_disk=False, with_console=False)
    port, tty = attach_tty(kernel)
    return kernel, port, tty


class TestLineDiscipline:
    def test_line_assembly(self):
        kernel, port, tty = tty_kernel()
        for ch in b"ls -l\n":
            ttyinput(kernel, tty, ch)
        assert tty.canq == [b"ls -l\n"]
        assert tty.rawq == []

    def test_erase_character(self):
        kernel, port, tty = tty_kernel()
        for ch in b"lx":
            ttyinput(kernel, tty, ch)
        ttyinput(kernel, tty, CERASE)
        for ch in b"s\n":
            ttyinput(kernel, tty, ch)
        assert tty.canq == [b"ls\n"]

    def test_erase_on_empty_line(self):
        kernel, port, tty = tty_kernel()
        ttyinput(kernel, tty, CERASE)  # nothing to erase: no crash, no echo
        assert tty.rawq == []

    def test_kill_character(self):
        kernel, port, tty = tty_kernel()
        for ch in b"rm -rf /":
            ttyinput(kernel, tty, ch)
        ttyinput(kernel, tty, CKILL)
        assert tty.rawq == []
        for ch in b"ls\n":
            ttyinput(kernel, tty, ch)
        assert tty.canq == [b"ls\n"]

    def test_echo_transmits(self):
        kernel, port, tty = tty_kernel()
        for ch in b"hi\n":
            ttyinput(kernel, tty, ch)
        assert port.tx_chars == 3

    def test_echo_can_be_disabled(self):
        kernel, port, tty = tty_kernel()
        tty.echo = False
        for ch in b"password\n":
            ttyinput(kernel, tty, ch)
        assert port.tx_chars == 0


class TestTypeAndRead:
    def test_lines_delivered_to_reader(self):
        kernel, port, tty = tty_kernel()
        result = type_and_read(kernel, text="one\ntwo\n")
        assert result.lines_read == [b"one\n", b"two\n"]
        assert result.overruns == 0

    def test_typing_rate_spreads_interrupts(self):
        kernel, port, tty = tty_kernel()
        result = type_and_read(kernel, text="abc\n", char_gap_ns=9_000_000)
        # Four characters at ~9 ms apart: the session spans >27 ms.
        assert result.elapsed_us >= 27_000

    def test_uart_overrun_on_burst(self):
        """Two characters landing before the interrupt is serviced lose
        the earlier one (the 8250's single holding register)."""
        kernel, port, tty = tty_kernel()
        from repro.kernel.intr import splhigh, spl0

        splhigh(kernel)  # hold the interrupt off while both bytes land
        port.type_text("ab", start_ns=kernel.machine.now_ns + 1_000, char_gap_ns=2_000)
        kernel.advance(3_000_000)
        spl0(kernel)
        assert port.rx_overruns == 1
        assert tty.rawq == [ord("b")]


class TestTtyProfile:
    def test_character_interrupt_is_measurable(self):
        """The paper's rhetorical question, answered with a capture."""
        system = build_case_study()
        attach_tty(system.kernel)
        capture = system.profile(
            lambda: type_and_read(system.kernel, text="profile me\n" * 3)
        )
        summary = summarize(system.analyze(capture))
        comintr = summary.get("comintr")
        ttyin = summary.get("ttyinput")
        assert comintr is not None and ttyin is not None
        assert comintr.calls >= 33  # one interrupt per character
        # Per-character cost is tens of microseconds, exactly resolvable.
        assert 20 <= comintr.avg_us <= 150
        assert summary.get("ttread") is not None

    def test_tty_functions_selectable_as_module(self):
        """Micro-profiling the tty subsystem alone (the paper's list:
        "various drivers (SCSI, tty, IDE)")."""
        system = build_case_study(profiled_modules=["kern/tty", "isa/com"])
        attach_tty(system.kernel)
        capture = system.profile(
            lambda: type_and_read(system.kernel, text="x\n")
        )
        summary = summarize(system.analyze(capture))
        names = set(summary.functions)
        assert "ttyinput" in names
        assert "bcopy" not in names  # nothing else was compiled with -profile
