"""Property-style parity tests: batch == streaming == sharded-merged.

Fifty randomly generated traces (fixed seeds, no wall clock anywhere) are
pushed through all three analysis paths; the summaries must be
byte-identical and the anomaly lists must match the batch reconstruction
exactly.  The generator deliberately produces *hostile* streams — random
nesting, unmatched exits, context switches mid-call, inline marks, and
time deltas large enough to wrap the 24-bit counter many times — because
the parity claim is about the pipeline, not about well-formed kernels.
"""

from __future__ import annotations

import random

import pytest

from stream_helpers import make_names

from repro.analysis.callstack import analyze_capture
from repro.analysis.pipeline import analyze_sharded, plan_shards
from repro.analysis.summary import (
    SummaryAccumulator,
    summarize,
    summarize_capture_streaming,
    summarize_records,
)
from repro.profiler.capture import Capture
from repro.profiler.ram import RawRecord

MASK = (1 << 24) - 1

NAMES = make_names(
    ("alpha", 500),
    ("bravo", 502),
    ("charlie", 504),
    ("delta", 506),
    ("echo", 508),
    ("foxtrot", 510),
    ("swtch", 600, "!"),
    ("MARK", 1002, "="),
)

FUNCTIONS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]


def random_records(seed: int, length: int = 400, wild_deltas: bool = False):
    """A hostile-but-deterministic record stream.

    The walk keeps a rough notion of the open stack so most events nest
    sensibly, then injects unmatched exits, surprise context switches and
    inline marks.  With ``wild_deltas`` the time steps reach a quarter of
    the counter range, so a 400-event trace wraps the counter ~25 times.
    """
    rng = random.Random(seed)
    records = []
    t = rng.randrange(1 << 24)  # random phase: wraps land anywhere
    depth = 0
    for _ in range(length):
        roll = rng.random()
        if roll < 0.04:
            entry = NAMES.by_name("swtch")
            tag = entry.entry_value if rng.random() < 0.5 else entry.exit_value
        elif roll < 0.08:
            tag = NAMES.by_name("MARK").entry_value
        elif roll < 0.16:
            # Unmatched / mismatched exit of a random function.
            tag = NAMES.by_name(rng.choice(FUNCTIONS)).exit_value
            depth = max(0, depth - 1)
        elif depth > 0 and roll < 0.55:
            tag = NAMES.by_name(rng.choice(FUNCTIONS)).exit_value
            depth -= 1
        else:
            tag = NAMES.by_name(rng.choice(FUNCTIONS)).entry_value
            depth += 1
        records.append(RawRecord(tag=tag, time=t & MASK))
        if wild_deltas:
            t += rng.randrange(1, 1 << 22)
        else:
            t += rng.randrange(1, 400)
    return records


def orderly_records(seed: int, blocks: int = 60):
    """Well-formed scheduling blocks (every shard planner cut is legal)."""
    rng = random.Random(seed)
    records = []
    t = rng.randrange(1 << 24)
    swtch = NAMES.by_name("swtch")
    for _ in range(blocks):
        records.append(RawRecord(tag=swtch.exit_value, time=t & MASK))
        t += rng.randrange(1, 50)
        for _ in range(rng.randrange(1, 5)):
            name = rng.choice(FUNCTIONS)
            records.append(
                RawRecord(tag=NAMES.by_name(name).entry_value, time=t & MASK)
            )
            t += rng.randrange(1, 100)
            records.append(
                RawRecord(tag=NAMES.by_name(name).exit_value, time=t & MASK)
            )
            t += rng.randrange(1, 30)
        records.append(RawRecord(tag=swtch.entry_value, time=t & MASK))
        t += rng.randrange(1, 5000)
    return records


def batch_summary(records):
    capture = Capture(records=tuple(records), names=NAMES, label="property")
    analysis = analyze_capture(capture)
    return summarize(analysis), analysis.anomalies


def assert_parity(records, *, max_shard_events=64, workers=2):
    batch, batch_anomalies = batch_summary(records)
    batch_text = batch.format()

    streamed = summarize_records(iter(records), NAMES)
    assert streamed.format() == batch_text

    sharded = analyze_sharded(
        records, NAMES, max_shard_events=max_shard_events, workers=workers
    )
    assert sharded.summary.format() == batch_text
    assert [(a.index, a.kind, a.detail) for a in sharded.anomalies] == [
        (a.index, a.kind, a.detail) for a in batch_anomalies
    ]
    return sharded


@pytest.mark.parametrize("seed", range(25))
def test_hostile_trace_parity(seed):
    assert_parity(random_records(seed, length=400))


@pytest.mark.parametrize("seed", range(25, 40))
def test_multiwrap_trace_parity(seed):
    """Deltas up to 2^22 us: the 24-bit counter wraps dozens of times."""
    records = random_records(seed, length=400, wild_deltas=True)
    sharded = assert_parity(records)
    # The point of the exercise: the trace really did span many wraps.
    batch, _ = batch_summary(records)
    assert batch.wall_us > (1 << 24)
    assert sharded.summary.wall_us == batch.wall_us


@pytest.mark.parametrize("seed", range(40, 50))
def test_orderly_trace_shards_and_matches(seed):
    """Well-formed blocks must actually shard (cuts exist) and still match."""
    records = orderly_records(seed)
    sharded = assert_parity(records, max_shard_events=48, workers=4)
    assert sharded.shard_count >= 3


def test_wrap_across_chunk_boundary():
    """A wrap falling exactly on a feed_records() chunk boundary."""
    swtch = NAMES.by_name("swtch")
    alpha = NAMES.by_name("alpha")
    t = (1 << 24) - 9  # entry lands 9 us before the counter wraps
    records = [
        RawRecord(tag=swtch.exit_value, time=t & MASK),
        RawRecord(tag=alpha.entry_value, time=(t + 4) & MASK),
        RawRecord(tag=alpha.exit_value, time=(t + 20) & MASK),  # post-wrap
        RawRecord(tag=swtch.entry_value, time=(t + 25) & MASK),
    ]
    accumulator = SummaryAccumulator(NAMES)
    # Feed in two chunks split across the wrap: state must carry over.
    accumulator.feed_records(records[:2])
    accumulator.feed_records(records[2:])
    accumulator.close()
    summary = accumulator.summary()

    batch, _ = batch_summary(records)
    assert summary.format() == batch.format()
    assert summary.get("alpha").net_us == 16


def test_streaming_capture_helper_matches_batch(simple_names):
    from stream_helpers import stream

    capture = stream(
        simple_names,
        ("<", "swtch", 100),
        (">", "main", 110),
        (">", "read", 130),
        ("=", "MGET", 140),
        ("<", "read", 180),
        ("<", "main", 200),
        (">", "swtch", 210),
    )
    assert (
        summarize_capture_streaming(capture).format()
        == summarize(analyze_capture(capture)).format()
    )


def test_sharding_falls_back_when_no_quiescent_points():
    """A tsleep-style trace (stacks stay suspended) cannot be cut safely:
    the planner must grow the shard rather than split call state."""
    swtch = NAMES.by_name("swtch")
    alpha = NAMES.by_name("alpha")
    bravo = NAMES.by_name("bravo")
    records = []
    t = 0
    # Every process blocks mid-call: at each swtch entry some suspended
    # stack is non-empty, so no cut point is ever quiescent.
    for _ in range(50):
        records.append(RawRecord(tag=swtch.exit_value, time=t & MASK))
        t += 3
        records.append(RawRecord(tag=alpha.entry_value, time=t & MASK))
        t += 7
        records.append(RawRecord(tag=bravo.entry_value, time=t & MASK))
        t += 5
        records.append(RawRecord(tag=swtch.entry_value, time=t & MASK))
        t += 11
    plans = plan_shards(records, NAMES, max_shard_events=16)
    assert len(plans) == 1
    assert len(plans[0]) == len(records)
    assert_parity(records, max_shard_events=16)
