"""Unit tests for the CPU cost model and the bus/memory map."""

from __future__ import annotations

import pytest

from repro.sim.bus import Bus, BusError, ISA_HOLE_START, MemoryRegion, Region
from repro.sim.cpu import CostModel, Cpu
from repro.sim.machine import Machine


class TestCostModel:
    def test_cycles_at_40mhz(self):
        model = CostModel(clock_hz=40_000_000)
        assert model.cycles(40) == 1_000  # 40 cycles at 25 ns each

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            CostModel().cycles(-1)

    def test_cksum_calibration_1kb(self):
        """Paper: "To checksum a 1 Kbyte packet was taking 843 microseconds"."""
        model = CostModel()
        us = model.cksum_ns(1024) / 1_000
        assert 750 <= us <= 930

    def test_asm_cksum_is_major_reduction(self):
        """Paper: recoding in_cksum should cut packet cost from ~2000 to
        ~1200 us, i.e. the checksum itself drops by roughly 10x."""
        stock = CostModel()
        recoded = stock.counterfactual(asm_cksum=True)
        assert recoded.cksum_ns(1024) < stock.cksum_ns(1024) / 5

    def test_cksum_in_isa_ram_much_worse(self):
        """Paper: checksumming in controller memory "would add at least an
        extra 980 microseconds" for a full packet."""
        model = CostModel()
        extra_us = (model.cksum_isa_ns(1500) - model.cksum_ns(1500)) / 1_000
        assert extra_us >= 980

    def test_counterfactual_does_not_mutate(self):
        model = CostModel()
        other = model.counterfactual(asm_cksum=True, mbufs_in_controller_ram=True)
        assert not model.asm_cksum and other.asm_cksum
        assert not model.mbufs_in_controller_ram

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CostModel().cksum_ns(-1)
        with pytest.raises(ValueError):
            CostModel().cksum_isa_ns(-1)

    def test_cpu_presets(self):
        assert Cpu.i386_40mhz().mhz == 40
        m68k = Cpu.m68020_25mhz()
        assert m68k.model.ast_emulation_ns == 0  # real multi-priority ints


class TestBus:
    def make_bus(self) -> Bus:
        return Bus(CostModel())

    def test_copy_cost_main_to_main_calibration(self):
        """Paper: copyout of a 1 KB mbuf cluster takes ~40 us."""
        bus = self.make_bus()
        us = bus.copy_ns(Region.MAIN, Region.MAIN, 1024) / 1_000
        assert 35 <= us <= 45

    def test_copy_cost_isa_to_main_calibration(self):
        """Paper: bcopy of a 1500 B frame out of controller RAM ~1045 us
        (modelled ~10% high so the Figure 3 bcopy/in_cksum ordering holds;
        see the CostModel calibration table)."""
        bus = self.make_bus()
        us = bus.copy_ns(Region.ISA8, Region.MAIN, 1500) / 1_000
        assert 990 <= us <= 1220

    def test_isa_slowdown_factor(self):
        """Paper: "the ISA bus is up to 20 times slower than main memory"."""
        bus = self.make_bus()
        assert 15 <= bus.slowdown(Region.ISA8) <= 25

    def test_isa_traffic_accounting(self):
        bus = self.make_bus()
        bus.copy_ns(Region.ISA8, Region.MAIN, 100)
        bus.copy_ns(Region.MAIN, Region.MAIN, 999)
        assert bus.isa_bytes_moved == 100

    def test_fill_cost(self):
        bus = self.make_bus()
        assert bus.fill_ns(Region.MAIN, 1000) == 1000 * CostModel().main_write_ns

    def test_map_and_find(self):
        bus = self.make_bus()
        region = bus.map(
            MemoryRegion(name="ram", base=0, size=0x1000, kind=Region.MAIN)
        )
        assert bus.find(0xFFF) is region
        with pytest.raises(BusError):
            bus.find(0x1000)

    def test_overlap_rejected(self):
        bus = self.make_bus()
        bus.map(MemoryRegion(name="a", base=0, size=0x100, kind=Region.MAIN))
        with pytest.raises(BusError):
            bus.map(MemoryRegion(name="b", base=0x80, size=0x100, kind=Region.MAIN))

    def test_read_tap_invoked(self):
        bus = self.make_bus()
        seen = []
        bus.map(
            MemoryRegion(
                name="rom",
                base=0x100,
                size=0x100,
                kind=Region.EPROM,
                on_read=lambda off: seen.append(off) or 0xAB,
            )
        )
        value, cost = bus.read8(0x142)
        assert value == 0xAB
        assert seen == [0x42]
        assert cost > 0

    def test_unmap(self):
        bus = self.make_bus()
        region = bus.map(MemoryRegion(name="a", base=0, size=16, kind=Region.MAIN))
        bus.unmap(region)
        with pytest.raises(BusError):
            bus.find(0)
        with pytest.raises(BusError):
            bus.unmap(region)

    def test_region_named(self):
        bus = self.make_bus()
        bus.map(MemoryRegion(name="video", base=0, size=16, kind=Region.ISA8))
        assert bus.region_named("video").kind is Region.ISA8
        with pytest.raises(BusError):
            bus.region_named("missing")


class TestMachine:
    def test_default_machine_is_the_case_study(self):
        machine = Machine()
        assert machine.cpu.name == "i386" and machine.cpu.mhz == 40
        assert machine.memory_bytes == 8 * 1024 * 1024
        assert machine.clock_chip.hz == 100

    def test_main_memory_mapped_below_isa_hole(self):
        machine = Machine()
        assert machine.main_memory.end == ISA_HOLE_START

    def test_isa_window_bounds_enforced(self):
        machine = Machine()
        with pytest.raises(BusError):
            machine.map_isa_window("bad", base=0x1000, size=0x100)
        region = machine.map_isa_window("ok", base=0xC0000, size=0x4000)
        assert region.kind is Region.ISA8

    def test_eprom_window_tap(self):
        machine = Machine()
        hits = []
        machine.map_eprom_window(
            "rom", base=0xD0000, size=0x10000, on_read=lambda off: hits.append(off) or 0
        )
        machine.bus.read8(0xD0000 + 1386)
        assert hits == [1386]

    def test_device_lookup(self):
        machine = Machine()
        assert machine.device_named("i8254") is machine.clock_chip
        with pytest.raises(KeyError):
            machine.device_named("nope")


class TestDecodeCache:
    def make_bus(self) -> Bus:
        bus = Bus(CostModel())
        bus.map(MemoryRegion(name="low", base=0x0, size=0x1000, kind=Region.MAIN))
        bus.map(MemoryRegion(name="rom", base=0xD0000, size=0x10000, kind=Region.EPROM))
        return bus

    def test_repeat_decodes_hit_the_cache(self):
        bus = self.make_bus()
        rom = bus.find(0xD0000)
        assert bus._hit is rom
        assert bus.find(0xD1234) is rom  # answered by the range check

    def test_cache_miss_falls_back_to_linear_scan(self):
        bus = self.make_bus()
        assert bus.find(0xD0000).name == "rom"
        assert bus.find(0x10).name == "low"
        assert bus.find(0xDFFFF).name == "rom"

    def test_unmap_clears_the_cached_hit(self):
        bus = self.make_bus()
        rom = bus.find(0xD0000)
        bus.unmap(rom)
        assert bus._hit is None
        with pytest.raises(BusError):
            bus.find(0xD0000)

    def test_map_unmap_bump_the_generation(self):
        bus = self.make_bus()
        start = bus.generation
        extra = bus.map(
            MemoryRegion(name="extra", base=0xC0000, size=0x1000, kind=Region.ISA8)
        )
        assert bus.generation == start + 1
        bus.unmap(extra)
        assert bus.generation == start + 2

    def test_disabled_cache_never_consults_a_stale_hit(self):
        bus = self.make_bus()
        rom = bus.find(0xD0000)
        assert bus._hit is rom
        bus.decode_cache = False
        # Out-of-range lookups must scan, not trust the stale hit.
        assert bus.find(0x10).name == "low"
        with pytest.raises(BusError):
            bus.find(0xF_FF00_0000)
