"""Shared pytest fixtures (builders live in stream_helpers)."""

from __future__ import annotations

import pytest

from stream_helpers import make_names


@pytest.fixture
def simple_names():
    """A small kernel-ish name table used across callstack tests."""
    return make_names(
        ("main", 500),
        ("read", 502),
        ("bcopy", 504),
        ("cksum", 506),
        ("intr", 508),
        ("tsleep", 510),
        ("swtch", 600, "!"),
        ("MGET", 1002, "="),
    )
