"""Tests for pipes: data integrity, blocking, EOF, and IPC profiling."""

from __future__ import annotations

import pytest

from repro.analysis.summary import summarize
from repro.kernel.ipc import PIPSIZ, Pipe, PipeEnd, PipeError
from repro.kernel.kernel import Kernel
from repro.kernel.proc import Proc
from repro.kernel.sched import user_mode
from repro.kernel.syscalls import syscall
from repro.system import build_case_study


def booted() -> Kernel:
    kernel = Kernel()
    kernel.boot(with_network=False, with_disk=False, with_console=False)
    return kernel


def run_pipeline(kernel: Kernel, payload: bytes, chunk: int = 512) -> dict:
    """A producer writes *payload* into a pipe; a consumer drains it."""
    state: dict = {"received": b"", "rfd": None}

    def producer(k, proc: Proc):
        rfd, wfd = yield from syscall(k, proc, "pipe")
        state["rfd"] = (proc, rfd)

        def consumer(ck, child: Proc):
            while True:
                data = yield from syscall(ck, child, "read", rfd, chunk)
                if not data:
                    break
                state["received"] += data
                yield from user_mode(ck, 40)
            yield from syscall(ck, child, "exit", 0)

        yield from syscall(k, proc, "fork", consumer)
        # Parent: close its read end, stream the payload, close, wait.
        yield from syscall(k, proc, "close", rfd)
        offset = 0
        while offset < len(payload):
            n = yield from syscall(
                k, proc, "write", wfd, payload[offset : offset + chunk]
            )
            offset += n
        yield from syscall(k, proc, "close", wfd)
        yield from syscall(k, proc, "wait")
        yield from syscall(k, proc, "exit", 0)

    kernel.sched.spawn("producer", producer)
    kernel.sched.run(until_ns=kernel.machine.now_ns + 600_000_000_000)
    return state


class TestPipeSemantics:
    def test_data_round_trips(self):
        kernel = booted()
        payload = bytes(range(256)) * 24  # 6 KB: crosses PIPSIZ
        state = run_pipeline(kernel, payload)
        assert state["received"] == payload

    def test_writer_blocks_when_full(self):
        """More than PIPSIZ in flight forces producer/consumer alternation."""
        kernel = booted()
        payload = b"x" * (PIPSIZ * 3)
        state = run_pipeline(kernel, payload, chunk=1024)
        assert state["received"] == payload
        assert kernel.sched.switches > 4  # they really took turns

    def test_eof_on_writer_close(self):
        kernel = booted()
        state = run_pipeline(kernel, b"short")
        assert state["received"] == b"short"  # consumer saw EOF and exited

    def test_write_to_closed_reader_is_epipe(self):
        kernel = booted()
        failures: list[str] = []

        def body(k, proc: Proc):
            rfd, wfd = yield from syscall(k, proc, "pipe")
            yield from syscall(k, proc, "close", rfd)
            try:
                yield from syscall(k, proc, "write", wfd, b"to nobody")
            except PipeError as exc:
                failures.append(str(exc))
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("writer", body)
        kernel.sched.run(until_ns=kernel.machine.now_ns + 60_000_000_000)
        assert failures and "EPIPE" in failures[0]

    def test_wrong_end_rejected(self):
        kernel = booted()
        pipe = Pipe()
        read_end = PipeEnd(pipe, writable=False)
        write_end = PipeEnd(pipe, writable=True)
        with pytest.raises(PipeError):
            next(iter(pipe_gen(kernel, read_end, b"x")))
        gen = pipe_read_gen(kernel, write_end)
        with pytest.raises(PipeError):
            next(gen)

    def test_bad_read_length(self):
        kernel = booted()
        pipe = Pipe()
        end = PipeEnd(pipe, writable=False)
        from repro.kernel.ipc import pipe_read

        gen = pipe_read(kernel, end, 0)
        with pytest.raises(PipeError):
            next(gen)


def pipe_gen(kernel, end, data):
    from repro.kernel.ipc import pipe_write

    return pipe_write(kernel, end, data)


def pipe_read_gen(kernel, end):
    from repro.kernel.ipc import pipe_read

    return pipe_read(kernel, end, 10)


class TestIpcProfiling:
    def test_pipe_interaction_visible_in_capture(self):
        """The paper's IPC-analysis claim: the producer/consumer hand-offs
        are right there in the profile."""
        system = build_case_study()
        payload = b"y" * (PIPSIZ * 2)
        capture = system.profile(
            lambda: run_pipeline(system.kernel, payload, chunk=1024)
        )
        summary = summarize(system.analyze(capture))
        assert summary.get("pipe_write") is not None
        assert summary.get("pipe_read") is not None
        assert summary.get("pipe_read").calls >= 8
        # Both processes' code paths were reconstructed.
        analysis = system.analyze(capture)
        assert len(analysis.procs) >= 2
        assert analysis.context_switches > 4


class TestPipeProperties:
    from hypothesis import given, settings, strategies as st

    @given(
        chunks=st.lists(
            st.binary(min_size=1, max_size=2_000), min_size=1, max_size=12
        ),
        read_size=st.integers(min_value=1, max_value=3_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_write_read_pattern_preserves_the_stream(
        self, chunks, read_size
    ):
        """Property: whatever the chunking on either side, the consumer
        sees exactly the producer's byte stream, in order."""
        kernel = booted()
        payload = b"".join(chunks)
        state: dict = {"received": b""}

        def producer(k, proc: Proc):
            rfd, wfd = yield from syscall(k, proc, "pipe")

            def consumer(ck, child: Proc):
                while True:
                    data = yield from syscall(ck, child, "read", rfd, read_size)
                    if not data:
                        break
                    state["received"] += data
                yield from syscall(ck, child, "exit", 0)

            yield from syscall(k, proc, "fork", consumer)
            yield from syscall(k, proc, "close", rfd)
            for chunk in chunks:
                yield from syscall(k, proc, "write", wfd, chunk)
            yield from syscall(k, proc, "close", wfd)
            yield from syscall(k, proc, "wait")
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("producer", producer)
        kernel.sched.run(until_ns=kernel.machine.now_ns + 600_000_000_000)
        assert state["received"] == payload
