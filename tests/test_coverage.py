"""Coverage subsystem: call graph, corpus scan, the P6xx family, the hunt.

The acceptance bar for the static leg is exact: the call graph's tag set
must equal the live case-study's instrumented universe, and every
instrumented function must land in exactly one of covered / blind spot /
unreachable / unmapped.  The mutation tests mirror the proflint idiom —
each P6xx code is provoked by the one defect it names (delete a call
edge -> P601, drop a capture -> P602, ...) and asserted by exact code.
"""

from __future__ import annotations

import dataclasses
import pathlib
import shutil

import pytest

from repro.coverage import (
    ROOT_CATEGORIES,
    build_call_graph,
    build_coverage_report,
    coverage_diagnostics,
    hunt_coverage,
    render_coverage_json,
    scan_capture_coverage,
    scan_corpus,
)
from repro.coverage.corpus import CaptureCoverage, CorpusCoverage
from repro.instrument.namefile import DUMMY_NAME, NameTable
from repro.instrument.tags import TagEntry
from repro.workloads import WORKLOAD_REGISTRY

GOLDEN = pathlib.Path(__file__).parent / "golden"
NAMES_FILE = GOLDEN / "case_study.tags"
SEED_CAPTURES = ("figure3_network_v2.mpf", "figure5_forkexec_v2.mpf")

#: Instrumented functions with no static path from any root: the known
#: dead instrumentation in the shipped kernel (asserted exactly so any
#: kernel or extractor change that silently grows/shrinks the set shows
#: up here).
KNOWN_DEAD = {
    "max",
    "ovbcopy",
    "setrunnable",
    "splclock",
    "splsoftclock",
    "untimeout",
    "vm_map_protect",
}


def codes(report) -> list[str]:
    return [diagnostic.code for diagnostic in report]


@pytest.fixture(scope="module")
def graph():
    return build_call_graph()


@pytest.fixture(scope="module")
def names():
    return NameTable.read(NAMES_FILE)


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cov") / "corpus"
    root.mkdir()
    for name in SEED_CAPTURES:
        shutil.copy(GOLDEN / name, root / name)
    return root


@pytest.fixture(scope="module")
def corpus(corpus_dir, names):
    return scan_corpus(corpus_dir, names)


class TestCallGraph:
    def test_tags_equal_the_live_instrumented_universe(self, graph):
        from repro.system import build_case_study

        system = build_case_study()
        instrumented = {
            entry.name for entry in system.names if entry.name != DUMMY_NAME
        }
        assert set(graph.by_tag) == instrumented

    def test_all_root_categories_are_populated(self, graph):
        for category in ROOT_CATEGORIES:
            assert graph.roots[category], f"no {category} roots"

    def test_syscall_surface_is_reachable(self, graph):
        reachable = graph.reachable_tags()
        for tag in ("sys_fork", "sys_read", "sys_write", "swtch", "hardclock"):
            assert tag in reachable, f"{tag} should be statically reachable"

    def test_known_dead_instrumentation(self, graph):
        dead = set(graph.by_tag) - graph.reachable_tags()
        assert dead == KNOWN_DEAD

    def test_neighborhood_walks_both_directions(self, graph):
        # bcopy is a leaf called from many places: an undirected walk
        # must pull in caller-side tags, and the seed excludes itself.
        hood = graph.tag_neighborhood("bcopy", hops=2)
        assert "bcopy" not in hood
        assert len(hood) > 1

    def test_unknown_tag_has_empty_neighborhood(self, graph):
        assert graph.tag_neighborhood("no_such_fn") == frozenset()

    def test_root_restriction_shrinks_reachability(self, graph):
        syscall_only = graph.reachable_keys(categories=("syscall",))
        everything = graph.reachable_keys()
        assert syscall_only < everything


class TestCorpusScan:
    def test_capture_decodes_to_named_functions(self, corpus_dir, names):
        row = scan_capture_coverage(corpus_dir / SEED_CAPTURES[0], names)
        assert row.ok
        assert row.records > 0
        assert row.observed
        assert DUMMY_NAME not in row.observed
        assert row.label == "cli: network"
        assert row.workload == "network"

    def test_corpus_groups_by_workload(self, corpus):
        groups = corpus.by_workload()
        assert sorted(groups) == ["forkexec", "network"]
        assert corpus.observed_union() == groups["network"] | groups["forkexec"]

    def test_unreadable_capture_is_carried_not_fatal(self, tmp_path, names):
        root = tmp_path / "corpus"
        root.mkdir()
        shutil.copy(GOLDEN / SEED_CAPTURES[0], root / SEED_CAPTURES[0])
        (root / "junk.mpf").write_bytes(b"not a capture at all")
        scanned = scan_corpus(root, names)
        assert len(scanned.captures) == 2
        assert len(scanned.failed) == 1
        assert scanned.failed[0].error
        assert scanned.observed_union()  # the good capture still counts

    def test_jobs_do_not_change_the_scan(self, corpus_dir, names):
        one = scan_corpus(corpus_dir, names, jobs=1)
        two = scan_corpus(corpus_dir, names, jobs=2)
        assert one == two


class TestCoverageReport:
    def test_every_function_classified_exactly_once(self, corpus, names, graph):
        report = build_coverage_report(corpus, names, graph=graph)
        universe = {
            entry.name for entry in names if entry.name != DUMMY_NAME
        }
        buckets = [
            set(report.covered),
            {spot.name for spot in report.blind_spots},
            {name for name, _ in report.unreachable},
            set(report.unmapped),
        ]
        assert set().union(*buckets) == universe
        assert sum(len(bucket) for bucket in buckets) == len(universe)
        assert not report.unmapped  # shipped names and sources agree

    def test_seed_corpus_has_blind_spots_not_errors(self, corpus, names, graph):
        report = build_coverage_report(corpus, names, graph=graph)
        diagnostics = coverage_diagnostics(report, graph=graph)
        assert set(codes(diagnostics)) == {"P601", "P602"}
        assert diagnostics.exit_code == 0  # warnings only

    def test_blind_spots_carry_workload_suggestions(self, corpus, names, graph):
        report = build_coverage_report(corpus, names, graph=graph)
        suggested = [
            spot for spot in report.blind_spots if spot.suggested_workload
        ]
        assert suggested, "no blind spot got a neighborhood suggestion"
        for spot in suggested:
            assert spot.suggested_workload in {"network", "forkexec"}
            assert spot.shared_neighbors > 0

    def test_p601_sites_point_at_definitions(self, corpus, names, graph):
        report = build_coverage_report(corpus, names, graph=graph)
        diagnostics = coverage_diagnostics(report, graph=graph)
        dead = [d for d in diagnostics if d.code == "P601"]
        assert {d.message.split()[0] for d in dead} == KNOWN_DEAD
        for diagnostic in dead:
            assert diagnostic.source.endswith(".py")
            assert diagnostic.line


class TestMutations:
    """Each P6xx code provoked by exactly the defect it names."""

    def test_p601_on_deleted_call_edge(self, tmp_path, corpus, names):
        # softclock is reachable only through its soft-interrupt
        # registration in Kernel.boot; neuter that one call edge and the
        # function must flip from blind spot to dead instrumentation.
        from repro.lint.ast_lint import kernel_source_root

        mutated = tmp_path / "kernel"
        shutil.copytree(kernel_source_root(), mutated)
        kernel_py = mutated / "kernel.py"
        text = kernel_py.read_text()
        assert "lambda: softclock(self)" in text
        kernel_py.write_text(
            text.replace("lambda: softclock(self)", "lambda: None")
        )
        graph = build_call_graph(kernel_root=mutated)
        assert "softclock" not in graph.reachable_tags()
        report = build_coverage_report(corpus, names, graph=graph)
        diagnostics = coverage_diagnostics(report, graph=graph)
        p601_names = {
            d.message.split()[0] for d in diagnostics if d.code == "P601"
        }
        assert p601_names == KNOWN_DEAD | {"softclock"}

    def test_p602_on_dropped_capture(self, tmp_path, corpus, names, graph):
        # Drop the forkexec capture: every reachable tag only it
        # observed must surface as a P602 blind spot.
        root = tmp_path / "corpus"
        root.mkdir()
        shutil.copy(GOLDEN / SEED_CAPTURES[0], root / SEED_CAPTURES[0])
        shrunk = scan_corpus(root, names)
        groups = corpus.by_workload()
        lost = groups["forkexec"] - groups["network"]
        lost &= graph.reachable_tags()
        assert lost, "forkexec observes nothing unique? corpus changed"
        report = build_coverage_report(shrunk, names, graph=graph)
        diagnostics = coverage_diagnostics(report, graph=graph)
        p602_names = {
            d.message.split()[0] for d in diagnostics if d.code == "P602"
        }
        assert lost <= p602_names

    def test_p603_on_redundant_workload(self, corpus, names, graph):
        # A synthetic second workload observing a strict subset of
        # network's tags contributes nothing unique.
        network = next(
            row for row in corpus.captures if row.workload == "network"
        )
        subset = frozenset(sorted(network.observed)[:5])
        redundant = CaptureCoverage(
            index=len(corpus.captures),
            path="synthetic.mpf",
            label="cli: fileread",
            workload="fileread",
            status="ok",
            records=10,
            observed=subset,
            unknown_tags=0,
        )
        doubled = CorpusCoverage(
            root=corpus.root, captures=corpus.captures + (redundant,)
        )
        report = build_coverage_report(doubled, names, graph=graph)
        diagnostics = coverage_diagnostics(report, graph=graph)
        redundant_rows = [
            d.message for d in diagnostics if d.code == "P603"
        ]
        assert any("'fileread'" in message for message in redundant_rows)

    def test_p604_on_namefile_tag_missing_from_sources(
        self, corpus, names, graph
    ):
        ghost = NameTable.read(NAMES_FILE)
        free = max(entry.value for entry in ghost) + 2
        ghost.add(TagEntry(name="ghost_fn", value=free))
        report = build_coverage_report(corpus, ghost, graph=graph)
        assert report.unmapped == ("ghost_fn",)
        diagnostics = coverage_diagnostics(report, graph=graph)
        assert "P604" in codes(diagnostics)
        assert diagnostics.exit_code == 1  # name/source disagreement is an error

    def test_p605_on_unreadable_capture(self, tmp_path, names, graph):
        root = tmp_path / "corpus"
        root.mkdir()
        shutil.copy(GOLDEN / SEED_CAPTURES[0], root / SEED_CAPTURES[0])
        (root / "junk.mpf").write_bytes(b"\x00" * 64)
        report = build_coverage_report(scan_corpus(root, names), names, graph=graph)
        assert len(report.failed) == 1
        assert report.failed[0][0] == "junk.mpf"  # basename, not path
        diagnostics = coverage_diagnostics(report, graph=graph)
        assert "P605" in codes(diagnostics)
        assert diagnostics.exit_code == 1


class TestDeterminism:
    def test_report_ignores_file_creation_order(self, tmp_path, names, graph):
        documents = []
        for order, parent in ((SEED_CAPTURES, "a"), (SEED_CAPTURES[::-1], "b")):
            root = tmp_path / parent / "corpus"
            root.mkdir(parents=True)
            for name in order:
                shutil.copy(GOLDEN / name, root / name)
            report = build_coverage_report(
                scan_corpus(root, names), names, graph=graph
            )
            documents.append(render_coverage_json(report))
        assert documents[0] == documents[1]

    def test_report_ignores_worker_count(self, corpus_dir, names, graph):
        documents = [
            render_coverage_json(
                build_coverage_report(
                    scan_corpus(corpus_dir, names, jobs=jobs),
                    names,
                    graph=graph,
                )
            )
            for jobs in (1, 2)
        ]
        assert documents[0] == documents[1]


def fake_runner(spec, params):
    """Deterministic stand-in: each workload 'observes' tags derived
    from its name and parameter values, so gains depend only on the
    drawn configuration."""
    tags = {f"{spec.name}:base"}
    for key, value in sorted(params.items()):
        tags.add(f"{spec.name}:{key}={value}")
    return frozenset(tags)


class TestHunt:
    def test_same_seed_same_hunt(self):
        kwargs = dict(seed=7, rounds=3, candidates=4, runner=fake_runner)
        first = hunt_coverage(frozenset(), **kwargs)
        second = hunt_coverage(frozenset(), **kwargs)
        assert first == second

    def test_gains_fold_into_covered(self):
        result = hunt_coverage(
            frozenset({"warm"}), seed=1, rounds=2, candidates=3,
            runner=fake_runner,
        )
        assert result.improved
        assert set(result.baseline) <= set(result.covered)
        for step in result.steps:
            assert step.gain == len(step.new_tags) > 0
            assert step.label.startswith(f"hunt: {step.workload} ")

    def test_params_are_validated_and_schema_ordered(self):
        result = hunt_coverage(
            frozenset(), seed=3, rounds=1, candidates=2, runner=fake_runner
        )
        for step in result.steps:
            spec = WORKLOAD_REGISTRY[step.workload]
            assert [key for key, _ in step.params] == [
                p.name for p in spec.params
            ]
            spec.validate(dict(step.params))  # in-schema or raises

    def test_saturated_baseline_yields_no_steps(self):
        # Enumerate the fake runner's whole tag space for one workload:
        # with every reachable tag already covered no round can gain.
        spec = WORKLOAD_REGISTRY["network"]
        baseline = {f"{spec.name}:base"}
        for param in spec.params:
            values = (
                param.choices
                if param.choices
                else range(param.lo, param.hi + 1)
            )
            baseline |= {
                f"{spec.name}:{param.name}={value}" for value in values
            }
        result = hunt_coverage(
            frozenset(baseline), seed=5, rounds=2, candidates=3,
            registry={"network": spec}, runner=fake_runner,
        )
        assert not result.improved
        assert not result.steps

    def test_live_fixed_seed_hunt_improves_seed_corpus(self, corpus):
        """The acceptance criterion: one fixed-seed round on a fresh
        simulated system strictly increases seed-corpus coverage."""
        baseline = corpus.observed_union()
        result = hunt_coverage(baseline, seed=1, rounds=1, candidates=2)
        assert result.improved
        assert result.gained
        again = hunt_coverage(baseline, seed=1, rounds=1, candidates=2)
        assert dataclasses.asdict(result) == dataclasses.asdict(again)
