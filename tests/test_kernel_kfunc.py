"""Tests for the kernel-function registry and decorator."""

from __future__ import annotations

import pytest

from repro.kernel import import_all
from repro.kernel.kfunc import (
    KFuncError,
    functions_in_modules,
    kfunc,
    lookup,
    register_asm,
    registered_functions,
)
from repro.kernel.kernel import Kernel


class TestRegistry:
    def test_import_all_registers_the_kernel(self):
        import_all()
        names = {meta.name for meta in registered_functions()}
        # Spot-check every subsystem the paper profiles.
        for expected in (
            "bcopy",
            "in_cksum",
            "splnet",
            "splx",
            "spl0",
            "soreceive",
            "malloc",
            "free",
            "weintr",
            "werint",
            "weget",
            "westart",
            "ipintr",
            "tcp_input",
            "in_pcblookup",
            "tsleep",
            "falloc",
            "fdalloc",
            "swtch",
            "pmap_remove",
            "pmap_pte",
            "pmap_enter",
            "pmap_protect",
            "vm_fault",
            "vm_page_lookup",
            "bcopyb",
            "bzero",
            "kmem_alloc",
            "copyinstr",
            "hardclock",
            "gatherstats",
            "softclock",
            "timeout",
            "untimeout",
            "ISAINTR",
            "wdintr",
            "bread",
            "bwrite",
            "nfs_request",
            "min",
        ):
            assert expected in names, f"{expected} missing from registry"

    def test_registry_scale(self):
        """The registry should be a real kernel's worth of functions."""
        import_all()
        assert len(registered_functions()) >= 100

    def test_swtch_is_the_context_switch(self):
        import_all()
        meta = lookup("swtch")
        assert meta.context_switch and meta.is_asm

    def test_module_selection(self):
        import_all()
        net = functions_in_modules(["netinet"])
        names = {meta.name for meta in net}
        assert "tcp_input" in names and "ipintr" in names
        assert "bread" not in names

    def test_asm_flagging(self):
        import_all()
        assert lookup("bcopy").is_asm
        assert not lookup("tcp_input").is_asm


class TestDecorator:
    def test_plain_function_cannot_sleep(self):
        with pytest.raises(KFuncError):

            @kfunc(module="test/bad", can_sleep=True)
            def not_a_generator(k):
                return 1

    def test_generator_must_declare_can_sleep(self):
        with pytest.raises(KFuncError):

            @kfunc(module="test/bad2")
            def sneaky_generator(k):
                yield

    def test_cross_module_name_collision_rejected(self):
        @kfunc(module="test/one", name="collision_victim")
        def first(k):
            return 1

        with pytest.raises(KFuncError):

            @kfunc(module="test/two", name="collision_victim")
            def second(k):
                return 2

    def test_wrapper_charges_base_cost(self):
        @kfunc(module="test/cost", base_us=50.0, name="costly_test_fn")
        def costly(k):
            return "done"

        kernel = Kernel()
        before = kernel.machine.now_ns
        assert costly(kernel) == "done"
        elapsed = kernel.machine.now_ns - before
        assert elapsed >= 50_000

    def test_register_asm(self):
        meta = register_asm("test_asm_routine", module="test/asm", base_us=5.0)
        assert meta.is_asm
        assert lookup("test_asm_routine") is meta
