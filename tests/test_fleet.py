"""Fleet ingestion: arena striping, header-probe cache, determinism.

The load-bearing property is byte-identity: the merged fleet summary
must not depend on worker count or completion order.  The suite checks
it three ways — pool runs at {1, 2, 4, 7} workers against the inline
sequential reference, an explicitly shuffled merge fold, and corpora
salted with the frozen ``.mpf.corrupt`` goldens under salvage.
"""

from __future__ import annotations

import pickle
import random
import shutil
from pathlib import Path

import pytest

from repro.fleet import (
    FLEET_COUNTERS,
    FLEET_HISTOGRAMS,
    ArenaError,
    FleetError,
    MetricsArena,
    fleet_arena,
    format_fleet_summary,
    ingest_fleet,
    merge_fleet,
    plan_fleet,
)
from repro.fleet.ingest import _summarize_one
from repro.lint.fleet_lint import lint_fleet_plan, lint_fleet_result
from repro.profiler.upload import (
    cached_capture_meta,
    clear_meta_cache,
    write_capture_file,
)
from repro.telemetry.core import Telemetry

from stream_helpers import build_fleet_corpus, fleet_names, synth_capture_records

GOLDEN = Path(__file__).parent / "golden"
CORRUPT_GOLDENS = sorted(GOLDEN.glob("*.mpf.corrupt"))


# -- the shared-memory arena --------------------------------------------------


class TestMetricsArena:
    def test_counters_sum_across_stripes(self):
        with MetricsArena.create(["a", "b"], [], stripes=3) as arena:
            arena.writer(0).count("a", 5)
            arena.writer(1).count("a", 7)
            arena.writer(2).count("b")
            assert arena.counter_total("a") == 12
            assert arena.counter_total("b") == 1

    def test_histogram_totals_are_cumulative(self):
        spec = [("lat", (10.0, 100.0, 1000.0))]
        with MetricsArena.create([], spec, stripes=2) as arena:
            arena.writer(0).observe("lat", 5.0)
            arena.writer(1).observe("lat", 50.0)
            arena.writer(1).observe("lat", 5000.0)
            buckets, count, total = arena.histogram_total("lat")
            assert buckets == (1, 2, 2)  # cumulative: <=10, <=100, <=1000
            assert count == 3
            assert total == pytest.approx(5055.0)

    def test_attach_sees_creator_writes(self):
        with MetricsArena.create(["n"], [], stripes=1) as arena:
            arena.writer(0).count("n", 3)
            twin = MetricsArena.attach(arena.name, ["n"], [], stripes=1)
            try:
                assert twin.counter_total("n") == 3
                twin.writer(0).count("n", 4)
                assert arena.counter_total("n") == 7
            finally:
                twin.close()

    def test_pickle_round_trip_attaches_same_block(self):
        with MetricsArena.create(["n"], [("h", (1.0,))], stripes=2) as arena:
            clone = pickle.loads(pickle.dumps(arena))
            try:
                clone.writer(1).count("n", 9)
                assert arena.counter_total("n") == 9
                assert clone.name == arena.name
            finally:
                clone.close()

    def test_publish_into_registry(self):
        telemetry = Telemetry("test").enable()
        with fleet_arena(stripes=2) as arena:
            arena.writer(0).count("fleet.captures.ingested", 2)
            arena.writer(1).count("fleet.captures.ingested", 3)
            arena.writer(0).observe("fleet.stage.decode_us", 700.0)
            arena.publish_into(telemetry)
            counter = telemetry.registry.get("fleet.captures.ingested")
            assert counter is not None and counter.value == 5
            # Counters publish as deltas: a second publish of unchanged
            # totals must not double them.
            arena.publish_into(telemetry)
            assert counter.value == 5
            arena.writer(0).count("fleet.captures.ingested")
            arena.publish_into(telemetry)
            assert counter.value == 6
            histogram = telemetry.registry.get("fleet.stage.decode_us")
            assert histogram is not None and histogram.count == 1
            # The whole catalog registers, even instruments still at zero.
            for name in FLEET_COUNTERS:
                assert telemetry.registry.get(name) is not None

    def test_publish_respects_disabled_telemetry(self):
        telemetry = Telemetry("test")  # disabled
        with fleet_arena(stripes=1) as arena:
            arena.writer(0).count("fleet.captures.ingested")
            arena.publish_into(telemetry)
            assert len(telemetry.registry) == 0

    def test_layout_errors(self):
        with pytest.raises(ArenaError):
            MetricsArena.create(["x", "x"], [], stripes=1)
        with pytest.raises(ArenaError):
            MetricsArena.create([], [("h", ())], stripes=1)
        with pytest.raises(ArenaError):
            MetricsArena.create(["x"], [], stripes=0)
        with MetricsArena.create(["x"], [], stripes=2) as arena:
            with pytest.raises(ArenaError):
                arena.writer(2)

    def test_snapshot_shape(self):
        with fleet_arena(stripes=1) as arena:
            arena.writer(0).count("fleet.records.decoded", 42)
            snapshot = arena.snapshot()
            assert snapshot["counters"]["fleet.records.decoded"] == 42
            assert set(snapshot["histograms"]) == {
                name for name, _ in FLEET_HISTOGRAMS
            }


# -- the header-probe cache ---------------------------------------------------


class TestMetaCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_meta_cache()
        yield
        clear_meta_cache()

    def test_hit_returns_cached_object(self, tmp_path):
        path = tmp_path / "one.mpf"
        write_capture_file(path, synth_capture_records(0, 16), label="one")
        first = cached_capture_meta(path)
        second = cached_capture_meta(path)
        assert second is first  # identity: no re-read happened

    def test_rewrite_invalidates(self, tmp_path):
        path = tmp_path / "one.mpf"
        write_capture_file(path, synth_capture_records(0, 16), label="before")
        before = cached_capture_meta(path)
        assert before.label == "before"
        write_capture_file(path, synth_capture_records(1, 32), label="after")
        after = cached_capture_meta(path)
        assert after.label == "after" and after is not before

    def test_damaged_header_not_cached(self, tmp_path):
        path = tmp_path / "bad.mpf"
        path.write_bytes(b"NOPE")
        with pytest.raises(ValueError):
            cached_capture_meta(path)
        write_capture_file(path, synth_capture_records(0, 16), label="fixed")
        assert cached_capture_meta(path).label == "fixed"

    def test_lru_eviction(self, tmp_path, monkeypatch):
        import repro.profiler.upload as upload

        monkeypatch.setattr(upload, "META_CACHE_SIZE", 2)
        paths = []
        for i in range(3):
            path = tmp_path / f"c{i}.mpf"
            write_capture_file(path, synth_capture_records(i, 16))
            paths.append(path)
            cached_capture_meta(path)
        # Only the two most recent survive the LRU sweep.
        assert len(upload._meta_cache) == 2
        evicted = cached_capture_meta(paths[0])
        assert evicted.count > 0  # re-probed fine after eviction


# -- planning -----------------------------------------------------------------


class TestPlan:
    def test_plan_is_path_sorted(self, tmp_path):
        names = build_fleet_corpus(tmp_path, captures=5)
        assert names is not None
        plan = plan_fleet(tmp_path)
        paths = [c.path for c in plan.captures]
        assert paths == sorted(paths)
        assert [c.index for c in plan.captures] == list(range(5))
        assert plan.total_records > 0

    def test_unreadable_header_lands_in_plan(self, tmp_path):
        build_fleet_corpus(tmp_path, captures=1)
        (tmp_path / "junk.mpf").write_bytes(b"????")
        plan = plan_fleet(tmp_path)
        junk = [c for c in plan.captures if "junk" in c.path]
        assert junk and junk[0].meta is None and junk[0].probe_error

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FleetError):
            plan_fleet(tmp_path / "nowhere")


# -- determinism --------------------------------------------------------------


def _ingest_text(root, names, *, jobs, salvage="off"):
    result = ingest_fleet(root, names, jobs=jobs, salvage=salvage)
    return format_fleet_summary(result), result


class TestDeterminism:
    def test_worker_counts_merge_byte_identical(self, tmp_path):
        names = build_fleet_corpus(tmp_path, captures=9, events=48)
        reference, ref_result = _ingest_text(tmp_path, names, jobs=1)
        assert ref_result.failed == 0
        for jobs in (2, 4, 7):
            text, result = _ingest_text(tmp_path, names, jobs=jobs)
            assert text == reference, f"jobs={jobs} diverged"
            assert result.manifest() == ref_result.manifest()

    def test_shuffled_fold_matches_plan_order(self, tmp_path):
        names = build_fleet_corpus(tmp_path, captures=6, events=40)
        plan = plan_fleet(tmp_path)
        shards = []
        for capture in plan.captures:
            _, accumulator = _summarize_one(
                capture.path, names, "columnar", "off", None
            )
            shards.append((capture.index, accumulator))
        ordered = merge_fleet(names, list(shards)).summary().format()
        for seed in range(3):
            shuffled = list(shards)
            random.Random(seed).shuffle(shuffled)
            assert merge_fleet(names, shuffled).summary().format() == ordered

    @pytest.mark.skipif(
        not CORRUPT_GOLDENS, reason="corrupt goldens not checked in"
    )
    def test_salvage_corpus_deterministic(self, tmp_path):
        """Corrupt goldens ride along under --salvage, all worker counts."""
        build_fleet_corpus(tmp_path, captures=4, events=40)
        for corrupt in CORRUPT_GOLDENS:
            shutil.copy(corrupt, tmp_path / corrupt.name)
        # The goldens decode with the case-study table, not the synth one.
        from repro.instrument.namefile import NameTable

        names = NameTable.read(GOLDEN / "case_study.tags")
        reference, ref_result = _ingest_text(
            tmp_path, names, jobs=1, salvage="auto"
        )
        assert ref_result.salvaged >= 1
        for jobs in (2, 4):
            text, _ = _ingest_text(tmp_path, names, jobs=jobs, salvage="auto")
            assert text == reference, f"salvage jobs={jobs} diverged"

    def test_salvage_off_fails_corrupt_captures(self, tmp_path):
        build_fleet_corpus(tmp_path, captures=2, events=40)
        (tmp_path / "broken.mpf").write_bytes(b"MPF2 garbage header")
        names = fleet_names()
        result = ingest_fleet(tmp_path, names, jobs=1, salvage="off")
        assert result.failed == 1 and result.ingested == 2
        failed = [r for r in result.reports if not r.ok]
        assert failed[0].error

    def test_empty_capture_merges_clean(self, tmp_path):
        names = build_fleet_corpus(tmp_path, captures=2, events=40)
        write_capture_file(tmp_path / "empty.mpf", [], label="empty")
        result = ingest_fleet(tmp_path, names, jobs=1)
        assert result.failed == 0
        assert result.accumulator is not None


# -- fleet metrics through a real pool ----------------------------------------


class TestPoolMetrics:
    def test_pool_run_populates_arena(self, tmp_path):
        names = build_fleet_corpus(tmp_path, captures=6, events=48)
        with fleet_arena(stripes=2) as arena:
            result = ingest_fleet(
                tmp_path, names, jobs=2, arena=arena
            )
            assert result.failed == 0
            assert arena.counter_total("fleet.captures.ingested") == 6
            assert (
                arena.counter_total("fleet.records.decoded")
                == result.records
            )
            _, count, _ = arena.histogram_total("fleet.stage.decode_us")
            assert count == 6


# -- P5xx lint ----------------------------------------------------------------


class TestFleetLint:
    def test_empty_plan_warns_p501(self, tmp_path):
        report = lint_fleet_plan(plan_fleet(tmp_path))
        assert report.codes() == ("P501",)

    def test_mixed_geometry_warns_p503(self, tmp_path):
        build_fleet_corpus(tmp_path, captures=3, events=24)
        write_capture_file(
            tmp_path / "odd.mpf",
            synth_capture_records(9, 24),
            counter_width_bits=16,
            label="odd-board",
        )
        report = lint_fleet_plan(plan_fleet(tmp_path))
        p503 = [d for d in report if d.code == "P503"]
        assert len(p503) == 1 and "odd.mpf" in p503[0].source

    def test_duplicate_labels_warn_p504(self, tmp_path):
        for i in range(2):
            write_capture_file(
                tmp_path / f"dup{i}.mpf",
                synth_capture_records(i, 24),
                label="same-label",
            )
        report = lint_fleet_plan(plan_fleet(tmp_path))
        assert "P504" in report.codes()

    def test_result_lint_reports_failures_and_salvage(self, tmp_path):
        names = build_fleet_corpus(tmp_path, captures=1, events=24)
        (tmp_path / "broken.mpf").write_bytes(b"not a capture at all")
        result = ingest_fleet(tmp_path, names, jobs=1, salvage="off")
        report = lint_fleet_result(result)
        assert "P502" in report.codes()
        assert report.exit_code == 1

    @pytest.mark.skipif(
        not CORRUPT_GOLDENS, reason="corrupt goldens not checked in"
    )
    def test_salvaged_captures_note_p505(self, tmp_path):
        from repro.instrument.namefile import NameTable

        shutil.copy(CORRUPT_GOLDENS[0], tmp_path / CORRUPT_GOLDENS[0].name)
        names = NameTable.read(GOLDEN / "case_study.tags")
        result = ingest_fleet(tmp_path, names, jobs=1, salvage="auto")
        report = lint_fleet_result(result)
        assert "P505" in report.codes()
        assert report.exit_code == 0  # info only
