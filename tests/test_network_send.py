"""Tests for the transmit path: active open and windowed stream send."""

from __future__ import annotations

from repro.analysis.summary import summarize
from repro.system import build_case_study
from repro.workloads.network_send import SinkReceiver, network_send


class TestActiveOpen:
    def test_connect_completes_and_is_timed(self):
        system = build_case_study()
        result = network_send(system.kernel, total_bytes=4 * 1024)
        # "How long does it take to open a TCP connection?" — answered.
        assert 300 <= result.connect_us <= 20_000

    def test_handshake_sequence_numbers(self):
        """The SYN carries iss; data starts at iss+1 (the off-by-one that
        deadlocks the window if wrong)."""
        system = build_case_study()
        result = network_send(system.kernel, total_bytes=8 * 1024)
        assert result.bytes_sent == 8 * 1024
        assert result.sink_bytes == 8 * 1024


class TestStreamSend:
    def test_all_bytes_delivered(self):
        system = build_case_study()
        result = network_send(system.kernel, total_bytes=24 * 1024)
        assert result.bytes_sent == result.sink_bytes == 24 * 1024

    def test_window_throttles_sender(self):
        """The sender must block on the 4 KB window and be ACK-clocked."""
        system = build_case_study()
        result = network_send(system.kernel, total_bytes=16 * 1024)
        assert result.sink_bytes == 16 * 1024
        # ACK clocking paces the stream: 16 segments cannot beat the
        # per-segment transmit cost (driver copy + checksum ~1.3 ms).
        assert result.elapsed_us >= 16 * 1_200

    def test_transmit_profile_shape(self):
        """On the send side the driver copy (main -> controller RAM) and
        the output checksum are the hot pair."""
        system = build_case_study()
        capture = system.profile(
            lambda: network_send(system.kernel, total_bytes=24 * 1024)
        )
        summary = summarize(system.analyze(capture))
        top_names = [row.name for row in summary.rows()[:6]]
        assert "bcopy" in top_names  # westart's copy into the controller
        assert "in_cksum" in top_names
        assert summary.get("westart").calls >= 24
        assert summary.get("tcp_output").calls >= 24

    def test_deterministic(self):
        a = network_send(build_case_study().kernel, total_bytes=8 * 1024)
        b = network_send(build_case_study().kernel, total_bytes=8 * 1024)
        assert a.elapsed_us == b.elapsed_us
        assert a.connect_us == b.connect_us

    def test_sink_acks_out_of_order_duplicates(self):
        sink = SinkReceiver()

        class WireStub:
            def __init__(self):
                self.sent = []

            def send_to_host(self, frame, at_ns):
                self.sent.append(frame)

        sink.wire = WireStub()
        from repro.kernel.net.headers import TH_ACK, TH_SYN, build_tcp_frame
        from repro.workloads.network_send import SINK_ADDR, SINK_PORT

        syn = build_tcp_frame(1, SINK_ADDR, 7, SINK_PORT, seq=100, ack=0, flags=TH_SYN)
        sink.receive(syn, 1_000)
        assert len(sink.wire.sent) == 1  # SYN|ACK
        # A data segment with a gap triggers an immediate duplicate ACK.
        data = build_tcp_frame(
            1, SINK_ADDR, 7, SINK_PORT, seq=999, ack=0, flags=TH_ACK, payload=b"x" * 10
        )
        sink.receive(data, 2_000)
        assert len(sink.wire.sent) == 2
        assert sink.bytes_received == 0
