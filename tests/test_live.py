"""Live profiling: open-ended wire streams, the live analyzer, repro top.

Covers the concurrent capture→analyze pipeline end to end: the
open-ended MPF2 wire form over real socketpairs and FIFOs, mid-stream
truncation salvage, the invariant that a drained live summary is
byte-identical to batch analysis, the peek/delta snapshot algebra the
rolling windows are built on, heartbeat cadence on an injected clock,
the reusable /metrics HTTP server, the incremental Chrome-trace track
(including call spans that cross wire-batch boundaries), the P8xx lint
family, and the ``repro live``/``repro top`` CLI.
"""

from __future__ import annotations

import io
import json
import os
import socket
import threading
import urllib.request
import zlib

import pytest

from stream_helpers import make_names
from repro.analysis.columnar import (
    PairingCarry,
    build_decode_map,
    columns_from_records,
    decode_columns,
    pair_entry_exits,
)
from repro.analysis.summary import SummaryAccumulator, summarize_records
from repro.db.query import FUNCTION_SORTS
from repro.lint import lint_live_drain, lint_live_stream, render_text
from repro.live.analyzer import LiveAnalyzer, LiveWindow
from repro.live.top import TOP_SORTS, TopView, render_top, sort_rows
from repro.live.trace import LiveTraceWriter
from repro.profiler.ram import RawRecord
from repro.profiler.upload import (
    TRAILER_BYTES,
    CaptureFormatError,
    CaptureStreamWriter,
    iter_capture_columns,
    iter_capture_file,
    read_capture,
    salvage_capture_stream,
)
from repro.telemetry import TELEMETRY, HeartbeatFlusher
from repro.__main__ import main


def run_cli(*argv: str) -> tuple[int, str]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, "\n".join(lines)


def _names():
    return make_names(
        ("main", 500), ("read", 502), ("bcopy", 504), ("swtch", 600, "!")
    )


def _records(n: int = 600) -> list[RawRecord]:
    """A well-formed entry/exit stream: main{ read{} bcopy{} ... }main."""
    names = _names()
    records = [RawRecord(tag=names.by_name("main").entry_value, time=0)]
    t = 0
    inner = ("read", "bcopy")
    for i in range((n - 2) // 2):
        entry = names.by_name(inner[i % 2])
        t += 3
        records.append(RawRecord(tag=entry.entry_value, time=t & 0xFFFFFF))
        t += 5
        records.append(RawRecord(tag=entry.exit_value, time=t & 0xFFFFFF))
    t += 2
    records.append(
        RawRecord(tag=names.by_name("main").exit_value, time=t & 0xFFFFFF)
    )
    return records


def _wire_bytes(records, *, chunk=100, label="wire") -> bytes:
    sink = io.BytesIO()
    with CaptureStreamWriter(sink, label=label) as writer:
        for start in range(0, len(records), chunk):
            writer.write_records(records[start : start + chunk])
    return sink.getvalue()


# -- the wire over real pipes -------------------------------------------------


class TestOpenStreamWire:
    def test_socketpair_round_trip(self):
        records = _records(400)
        left, right = socket.socketpair()

        def produce():
            sink = left.makefile("wb")
            try:
                with CaptureStreamWriter(sink, label="sock") as writer:
                    for start in range(0, len(records), 64):
                        writer.write_records(records[start : start + 64])
                        writer.flush()
            finally:
                sink.close()
                left.close()

        thread = threading.Thread(target=produce)
        thread.start()
        source = right.makefile("rb")
        got = []
        for batch in iter_capture_columns(source):
            got.extend(batch.to_records())
        source.close()
        right.close()
        thread.join()
        assert got == records

    def test_fifo_round_trip(self, tmp_path):
        fifo = tmp_path / "wire.fifo"
        os.mkfifo(fifo)
        records = _records(300)

        def produce():
            with open(fifo, "wb") as sink:
                with CaptureStreamWriter(sink, label="fifo") as writer:
                    writer.write_records(records)

        thread = threading.Thread(target=produce)
        thread.start()
        got = list(iter_capture_file(str(fifo)))
        thread.join()
        assert got == records

    def test_read_capture_adopts_trailer_truth(self):
        records = _records(100)
        got, meta = read_capture(io.BytesIO(_wire_bytes(records)))
        assert got == records
        assert meta.streamed
        assert meta.count == len(records)
        assert meta.crc32 is not None

    def test_truncation_raises_strict_and_salvages(self):
        records = _records(200)
        blob = _wire_bytes(records)
        cut = blob[: len(blob) - TRAILER_BYTES - 3]  # trailer + partial record
        with pytest.raises(CaptureFormatError):
            list(iter_capture_columns(io.BytesIO(cut)))
        salvaged, defects = salvage_capture_stream(io.BytesIO(cut))
        kinds = {defect.kind for defect in defects}
        assert "missing-trailer" in kinds
        assert salvaged == records[: len(salvaged)]
        assert len(salvaged) >= len(records) - 1

    def test_bit_flip_fails_trailer_crc(self):
        blob = bytearray(_wire_bytes(_records(100)))
        blob[60] ^= 0x10
        with pytest.raises(CaptureFormatError, match="CRC32"):
            list(iter_capture_columns(io.BytesIO(bytes(blob))))


# -- live == batch ------------------------------------------------------------


class TestLiveBatchIdentity:
    def test_drained_summary_byte_identical_to_batch(self):
        records = _records(500)
        names = _names()
        analyzer = LiveAnalyzer(names, window_s=1e-9)  # rotate every batch
        live = analyzer.consume(
            io.BytesIO(_wire_bytes(records, chunk=77)), chunk_records=61
        )
        batch = summarize_records(iter(records), names)
        assert live.format() == batch.format()
        assert analyzer.windows >= 1
        assert analyzer.records_total == len(records)

    def test_finish_idempotent_and_counts_drain(self):
        records = _records(100)
        analyzer = LiveAnalyzer(_names())
        first = analyzer.consume(io.BytesIO(_wire_bytes(records)))
        assert analyzer.finish() is first
        report = lint_live_drain(analyzer.records_total, len(records))
        assert report.ok


# -- peek / delta -------------------------------------------------------------


class TestPeekDelta:
    def test_peek_never_seals(self):
        records = _records(400)
        names = _names()
        accumulator = SummaryAccumulator(names)
        for record in records[:150]:
            accumulator.feed_records([record])
            if len(records) % 50 == 0:
                accumulator.peek()
        mid = accumulator.peek()
        assert mid.event_count == 150
        for record in records[150:]:
            accumulator.feed_records([record])
        reference = SummaryAccumulator(names)
        reference.feed_records(records)
        assert accumulator.summary().format() == reference.summary().format()

    def test_delta_is_exact_for_monotone_counters(self):
        records = _records(400)
        names = _names()
        accumulator = SummaryAccumulator(names)
        accumulator.feed_records(records[:200])
        older = accumulator.peek()
        accumulator.feed_records(records[200:])
        newer = accumulator.peek()
        delta = newer.delta(older)
        assert delta.event_count == 200
        for name, stats in delta.functions.items():
            old = older.functions.get(name)
            new = newer.functions[name]
            assert stats.calls == new.calls - (old.calls if old else 0)
            assert stats.net_us == new.net_us - (old.net_us if old else 0)
        # a function untouched in the window is dropped entirely
        frozen = newer.delta(newer)
        assert frozen.functions == {}
        assert frozen.event_count == 0


# -- windows, gauges, heartbeat ------------------------------------------------


class TestLiveAnalyzerWindows:
    def test_windows_rotate_on_injected_clock(self):
        ticks = iter([0.0, 0.0, 0.1, 0.3, 0.7, 1.2, 1.3, 1.4, 2.6, 9.9, 9.9, 9.9])
        windows: list[LiveWindow] = []
        analyzer = LiveAnalyzer(
            _names(),
            window_s=1.0,
            clock=lambda: next(ticks),
            on_window=windows.append,
        )
        records = _records(400)
        for start in range(0, len(records), 100):
            analyzer.feed(
                columns_from_records(records[start : start + 100]), arrival=0.0
            )
        analyzer.finish()
        assert analyzer.windows == len(windows)
        assert [w.seq for w in windows] == list(range(len(windows)))
        assert windows[-1].cumulative.event_count == len(records)
        assert sum(w.events for w in windows) == len(records)

    def test_gauges_published_when_enabled(self):
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            analyzer = LiveAnalyzer(_names(), window_s=1e-9)
            analyzer.consume(io.BytesIO(_wire_bytes(_records(200))))
            names = {m["name"] for m in TELEMETRY.snapshot()["metrics"]}
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert {
            "live.records.total",
            "live.lag_ms",
            "live.events_per_sec",
            "live.window.events_per_sec",
            "live.windows",
        } <= names

    def test_window_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            LiveAnalyzer(_names(), window_s=0.0)


class TestHeartbeat:
    def test_cadence_on_injected_clock(self, tmp_path):
        path = tmp_path / "beats.jsonl"
        clock_box = {"now": 0.0}
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            TELEMETRY.set_gauge("live.records.total", 7)
            flusher = HeartbeatFlusher(
                path, TELEMETRY, interval_s=5.0, clock=lambda: clock_box["now"]
            )
            assert flusher.maybe_flush()  # first beat is immediate
            clock_box["now"] = 4.9
            assert not flusher.maybe_flush()  # within the interval
            clock_box["now"] = 5.1
            assert flusher.maybe_flush()
            assert not flusher.maybe_flush()  # beat resets the timer
            clock_box["now"] = 10.2
            assert flusher.maybe_flush()
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        beats = [line for line in lines if line["type"] == "heartbeat"]
        assert [beat["seq"] for beat in beats] == [0, 1, 2]
        assert beats[1]["uptime_s"] == pytest.approx(5.1)
        metric_lines = [line for line in lines if line["type"] == "metric"]
        assert any(m["name"] == "live.records.total" for m in metric_lines)

    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            HeartbeatFlusher(tmp_path / "x.jsonl", TELEMETRY, interval_s=0)


# -- /metrics endpoint --------------------------------------------------------


class TestMetricsServer:
    def test_scrape_round_trip(self):
        from repro.fleet.serve import MetricsHTTPServer

        server = MetricsHTTPServer(lambda: "live_up 1\n", name="test-metrics")
        server.start()
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode()
        finally:
            server.close()
        assert body == "live_up 1\n"


# -- repro top ----------------------------------------------------------------


class TestTop:
    def test_sorts_match_db_function_sorts(self):
        assert TOP_SORTS == tuple(FUNCTION_SORTS)

    def _window(self):
        records = _records(300)
        analyzer = LiveAnalyzer(_names(), window_s=1e-9)
        analyzer.consume(io.BytesIO(_wire_bytes(records)))
        return analyzer.latest_window

    def test_sort_rows_orderings(self):
        window = self._window()
        summary = window.cumulative
        by_net = sort_rows(summary, "net")
        assert by_net == summary.rows()
        by_calls = sort_rows(summary, "calls")
        assert [s.calls for s in by_calls] == sorted(
            (s.calls for s in by_calls), reverse=True
        )
        by_name = sort_rows(summary, "name")
        assert [s.name for s in by_name] == sorted(s.name for s in by_name)
        with pytest.raises(ValueError, match="unknown sort"):
            sort_rows(summary, "bogus")

    def test_render_top_frame(self):
        frame = render_top(self._window(), sort="net", limit=2, label="t")
        lines = frame.splitlines()
        assert "repro top — t" in lines[0]
        assert "sort=net" in lines[0]
        # header rows + separator + column header + 2 function rows
        assert len(lines) == 6
        assert "\x1b" not in frame  # the frame itself is ANSI-free

    def test_once_mode_prints_single_final_frame(self):
        out = io.StringIO()
        view = TopView(sort="calls", limit=3, once=True, out=out)
        window = self._window()
        view.update(window)
        assert out.getvalue() == ""  # no live redraw in once mode
        frame = view.final()
        assert frame is not None
        assert out.getvalue() == frame + "\n"
        assert view.frames == 1

    def test_unknown_sort_rejected(self):
        with pytest.raises(ValueError, match="unknown sort"):
            TopView(sort="bogus")


# -- incremental Chrome trace --------------------------------------------------


class TestLiveTrace:
    def test_document_valid_and_spans_cross_batches(self, tmp_path):
        names = _names()
        records = _records(120)
        path = tmp_path / "live.trace.json"
        writer = LiveTraceWriter(path, names, max_slices=10_000)
        # A mid-call chunk boundary: batches of 7 guarantee entry/exit
        # pairs straddle the cut (pairs are written at even offsets).
        for start in range(0, len(records), 7):
            writer.feed(columns_from_records(records[start : start + 7]))
        writer.close()
        document = json.loads(path.read_text())
        slices = [e for e in document if e.get("ph") == "X"]
        # every within-process pair renders despite the batch cuts:
        whole = decode_columns(columns_from_records(records), names)
        assert len(slices) == len(pair_entry_exits(whole))
        tail = document[-1]
        assert tail["name"] == "live_trace_end"
        assert tail["args"]["records"] == len(records)
        assert tail["args"]["open_frames"] == 0

    def test_slice_cap_bounds_file(self, tmp_path):
        path = tmp_path / "capped.json"
        writer = LiveTraceWriter(path, _names(), max_slices=3)
        writer.feed(columns_from_records(_records(100)))
        writer.close()
        document = json.loads(path.read_text())
        assert len([e for e in document if e.get("ph") == "X"]) == 3
        assert writer.slices == 3

    def test_pairing_carry_matches_single_pass(self):
        names = _names()
        records = _records(200)
        whole = pair_entry_exits(decode_columns(columns_from_records(records), names))
        carry = PairingCarry()
        chunked = []
        decode_map = build_decode_map(names)
        previous, base, index = None, 0, 0
        for start in range(0, len(records), 13):
            chunk = records[start : start + 13]
            events = decode_columns(
                columns_from_records(chunk),
                names,
                start_index=index,
                time_base_us=base,
                previous=previous,
                decode_map=decode_map,
            )
            chunked.extend(pair_entry_exits(events, carry))
            index += len(chunk)
            base = events.times[-1]
            previous = chunk[-1].time
        assert chunked == whole
        assert carry.stack == [] and carry.open_names == {}


# -- P8xx lint ----------------------------------------------------------------


class TestLiveLint:
    def test_clean_stream_is_clean(self, tmp_path):
        path = tmp_path / "ok.mpf"
        path.write_bytes(_wire_bytes(_records(60)))
        report = lint_live_stream(path)
        assert report.ok and len(report) == 0, render_text(report)

    def test_p801_missing_trailer(self, tmp_path):
        blob = _wire_bytes(_records(60))
        path = tmp_path / "cut.mpf"
        path.write_bytes(blob[: len(blob) - TRAILER_BYTES])
        report = lint_live_stream(path)
        assert [d.code for d in report] == ["P801"]

    def test_p802_crc_mismatch(self, tmp_path):
        blob = bytearray(_wire_bytes(_records(60)))
        blob[50] ^= 0x04
        path = tmp_path / "flip.mpf"
        path.write_bytes(bytes(blob))
        report = lint_live_stream(path)
        assert [d.code for d in report] == ["P802"]

    def test_p803_count_lie(self, tmp_path):
        records = _records(60)
        blob = bytearray(_wire_bytes(records))
        lying = len(records) - 2
        blob[-8:-4] = lying.to_bytes(4, "big")
        # keep the trailer internally consistent so only the count lies
        path = tmp_path / "lie.mpf"
        path.write_bytes(bytes(blob))
        report = lint_live_stream(path)
        assert [d.code for d in report] == ["P803"]

    def test_p803_drain_mismatch(self):
        report = lint_live_drain(99, 100, source="<test>")
        assert [d.code for d in report] == ["P803"]
        assert "99" in report[0].message and "100" in report[0].message

    def test_backpatched_capture_out_of_scope(self, tmp_path):
        from repro.profiler.upload import write_capture_file

        path = tmp_path / "plain.mpf"
        write_capture_file(path, _records(30))
        assert len(lint_live_stream(path)) == 0

    def test_cli_lint_reports_p801(self, tmp_path):
        blob = _wire_bytes(_records(60))
        path = tmp_path / "cut.mpf"
        path.write_bytes(blob[:-5])
        names_path = tmp_path / "t.tags"
        _names().write(names_path)
        code, text = run_cli(
            "lint", str(path), "--names", str(names_path)
        )
        assert code != 0
        assert "P801" in text


# -- CLI ----------------------------------------------------------------------


class TestLiveCli:
    def test_live_capture_analyze_matches_batch_stream(self, tmp_path):
        wire = tmp_path / "run.mpf"
        tags = tmp_path / "run.tags"
        code, _ = run_cli(
            "live", "capture", "--workload", "mixed", "--packets", "40",
            "--names", str(tags), "--out", str(wire),
        )
        assert code == 0
        code, live_text = run_cli(
            "live", "analyze", str(wire), "--names", str(tags),
            "--summary-limit", "8",
        )
        assert code == 0
        code, batch_text = run_cli(
            "analyze", str(wire), "--names", str(tags), "--stream",
            "--summary-limit", "8",
        )
        assert code == 0
        # batch prefixes one "streamed N events" line; the reports match
        assert live_text == batch_text.split("\n", 1)[1]

    def test_top_once(self, capsys):
        code, _ = run_cli(
            "top", "--workload", "mixed", "--packets", "30", "--once",
            "--limit", "3", "--interval", "0.01",
        )
        assert code == 0
        frame = capsys.readouterr().out
        assert "repro top — mixed" in frame
        assert "sort=net" in frame
