"""The machine-readable workload registry (``repro workloads``).

The registry is the contract between three consumers: the capture CLI
(legacy ``--packets`` mapping, whose labels are baked into golden MPF2
files and must never change), the coverage reports (label -> workload
grouping) and the hunt driver (schemas, sampling, perturbation).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.__main__ import WORKLOADS, main
from repro.workloads import (
    WORKLOAD_REGISTRY,
    WorkloadError,
    format_registry,
    get_workload,
    registry_json,
    workload_for_label,
)

EXPECTED_NAMES = {
    "network", "network-send", "forkexec", "filewrite", "fileread",
    "nfs", "mixed", "tty", "snmp-linear", "snmp-btree",
}


def run_cli(*argv: str) -> tuple[int, str]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, "\n".join(lines)


class TestRegistryShape:
    def test_registry_names(self):
        assert set(WORKLOAD_REGISTRY) == EXPECTED_NAMES

    def test_cli_workload_table_is_derived_from_registry(self):
        assert set(WORKLOADS) == set(WORKLOAD_REGISTRY)
        for name, description in WORKLOADS.items():
            assert description == WORKLOAD_REGISTRY[name].description

    def test_every_param_default_is_in_schema(self):
        for spec in WORKLOAD_REGISTRY.values():
            assert spec.description
            for param in spec.params:
                assert param.doc, f"{spec.name}.{param.name} lacks a doc"
                assert param.contains(param.default), (
                    f"{spec.name}.{param.name} default out of schema"
                )

    def test_get_workload_rejects_unknown(self):
        with pytest.raises(WorkloadError):
            get_workload("no-such-workload")


class TestValidation:
    def test_unknown_param_rejected(self):
        spec = get_workload("network")
        with pytest.raises(WorkloadError):
            spec.validate({"bogus": 1})

    def test_out_of_range_rejected(self):
        spec = get_workload("network")
        hi = dict(spec.defaults())
        hi["total_packets"] = 10_000
        with pytest.raises(WorkloadError):
            spec.validate(hi)

    def test_defaults_validate_clean(self):
        for spec in WORKLOAD_REGISTRY.values():
            assert spec.validate(spec.defaults()) == spec.defaults()

    def test_sample_and_perturb_stay_in_schema(self):
        rng = random.Random(42)
        for spec in WORKLOAD_REGISTRY.values():
            for _ in range(20):
                sample = spec.sample(rng)
                spec.validate(sample)
                perturbed = {
                    param.name: param.perturb(rng, sample[param.name])
                    for param in spec.params
                }
                spec.validate(perturbed)


class TestLabels:
    def test_cli_label_is_the_legacy_format(self):
        # Baked into the golden v2 MPF2 captures: never change this.
        assert get_workload("network").label() == "cli: network"

    def test_parameterised_label_roundtrips(self):
        rng = random.Random(7)
        for spec in WORKLOAD_REGISTRY.values():
            label = spec.label(spec.sample(rng), prefix="hunt")
            assert label.startswith(f"hunt: {spec.name}")
            assert workload_for_label(label) == spec.name

    def test_unknown_labels_do_not_parse(self):
        assert workload_for_label("TCP receive (golden)") is None
        assert workload_for_label("") is None
        assert workload_for_label("cli: no-such-workload") is None


class TestPacketsCompatibility:
    """The legacy --packets knob maps onto registry parameters."""

    def test_packets_maps_reproduce_legacy_sizes(self):
        cases = {
            "network": {"total_packets": 30},
            "network-send": {"total_bytes": 30 * 1024},
            "forkexec": {"iterations": 2},
            "filewrite": {"nblocks": 15},
            "fileread": {"nblocks": 7},
            "nfs": {"file_bytes": 30 * 1024},
            "mixed": {"rounds": 3},
            "tty": {"lines": 3},
            "snmp-linear": {"requests": 30},
            "snmp-btree": {"requests": 30},
        }
        for name, expected in cases.items():
            mapped = WORKLOAD_REGISTRY[name].packets_map(30)
            for key, value in expected.items():
                assert mapped[key] == value, (name, key)

    def test_run_packets_is_not_range_checked(self):
        # --packets is an operational knob: sizes outside the hunt
        # schema (e.g. 200) must keep working exactly as before.
        from repro.system import build_case_study

        system = build_case_study()
        get_workload("fileread").run_packets(system, 200)


class TestCliListing:
    def test_text_listing_names_every_workload(self):
        code, text = run_cli("workloads")
        assert code == 0
        for spec in WORKLOAD_REGISTRY.values():
            assert spec.name in text
            for param in spec.params:
                assert param.name in text
        assert text == format_registry()

    def test_json_listing_is_the_stable_schema(self):
        code, text = run_cli("workloads", "--json")
        assert code == 0
        document = json.loads(text)
        assert document == registry_json()
        assert [row["name"] for row in document] == sorted(EXPECTED_NAMES)
        for row in document:
            assert set(row) == {
                "name", "description", "entry_point", "params"
            }
            for param in row["params"]:
                assert param["name"]
                assert "default" in param
