"""Tests for the scheduler, sleep/wakeup, and the clock path."""

from __future__ import annotations

import pytest

from repro.kernel.clock import Callout, hardclock, softclock, timeout, untimeout
from repro.kernel.kernel import Kernel
from repro.kernel.proc import ProcState
from repro.kernel.sched import SchedulerError, tsleep, user_mode, wakeup
from repro.kernel.syscalls import syscall


def booted_kernel() -> Kernel:
    kernel = Kernel()
    kernel.boot(with_network=False, with_disk=False, with_console=False)
    return kernel


class TestSchedulerBasics:
    def test_single_proc_runs_to_completion(self):
        kernel = booted_kernel()
        log: list[str] = []

        def body(k, proc):
            log.append("start")
            yield from user_mode(k, 100)
            log.append("end")
            return 42

        proc = kernel.sched.spawn("solo", body)
        kernel.sched.run()
        assert log == ["start", "end"]
        assert proc.state is ProcState.SZOMB
        assert proc.exit_status == 42

    def test_sleep_and_wakeup_via_interrupt(self):
        kernel = booted_kernel()
        from repro.kernel.intr import IPL_NET
        from repro.sim.engine import InterruptLine

        woken: list[int] = []

        def handler():
            wakeup(kernel, "chan-x")

        line = InterruptLine(irq=5, name="dev", ipl=IPL_NET, handler=handler)
        kernel.machine.interrupts.post(line, due_ns=4_000_000)

        def body(k, proc):
            yield from tsleep(k, "chan-x", wmesg="waitx")
            woken.append(k.machine.now_ns)

        kernel.sched.spawn("sleeper", body)
        kernel.sched.run()
        assert len(woken) == 1
        assert woken[0] >= 4_000_000  # woke after the interrupt

    def test_sleep_timeout_wakes(self):
        kernel = booted_kernel()
        results: list[object] = []

        def body(k, proc):
            value = yield from tsleep(k, "never-signalled", timo=3)
            results.append(value)

        kernel.sched.spawn("timo", body)
        kernel.sched.run()
        assert results == ["EWOULDBLOCK"]
        # Three ticks at 100 Hz is ~30 ms.
        assert kernel.machine.now_ns >= 30_000_000

    def test_two_procs_interleave(self):
        kernel = booted_kernel()
        log: list[str] = []

        def ping(k, proc):
            log.append("ping-runs")
            wakeup(k, "pong-chan")
            yield from tsleep(k, "ping-chan", timo=50)
            log.append("ping-woke")

        def pong(k, proc):
            yield from tsleep(k, "pong-chan", timo=50)
            log.append("pong-woke")
            wakeup(k, "ping-chan")
            return None

        kernel.sched.spawn("pong", pong)
        kernel.sched.spawn("ping", ping)
        kernel.sched.run()
        assert "pong-woke" in log and "ping-woke" in log

    def test_deadlock_detection(self):
        kernel = Kernel()  # no clock programmed: no interrupt sources

        def body(k, proc):
            yield from tsleep(k, "forever")

        kernel.sched.spawn("stuck", body)
        with pytest.raises(SchedulerError, match="deadlock"):
            kernel.sched.run()

    def test_idle_time_accrues_while_sleeping(self):
        kernel = booted_kernel()

        def body(k, proc):
            yield from tsleep(k, "nap", timo=5)

        kernel.sched.spawn("napper", body)
        kernel.sched.run()
        assert kernel.sched.switches >= 1

    def test_until_ns_bound(self):
        kernel = booted_kernel()

        def body(k, proc):
            while True:
                yield from tsleep(k, "loop", timo=2)

        kernel.sched.spawn("immortal", body)
        kernel.sched.run(until_ns=200_000_000)
        assert kernel.machine.now_ns >= 200_000_000
        # Bounded: didn't run away to the 7-day mark.
        assert kernel.machine.now_ns < 1_000_000_000

    def test_preempt_yields_between_procs(self):
        kernel = booted_kernel()
        order: list[str] = []

        def busy(k, proc):
            for _ in range(3):
                order.append("busy")
                yield from user_mode(k, 200)
            return None

        def other(k, proc):
            order.append("other")
            yield from user_mode(k, 10)
            return None

        kernel.sched.spawn("busy", busy)
        kernel.sched.spawn("other", other)
        kernel.sched.run()
        assert order.count("busy") == 3 and "other" in order


class TestClock:
    def test_hardclock_advances_ticks(self):
        kernel = booted_kernel()

        def body(k, proc):
            yield from tsleep(k, "nap", timo=10)

        kernel.sched.spawn("napper", body)
        kernel.sched.run()
        assert kernel.ticks >= 10

    def test_timeout_and_softclock(self):
        kernel = booted_kernel()
        fired: list[int] = []
        timeout(kernel, lambda k, arg: fired.append(arg), 7, ticks=2)

        def body(k, proc):
            yield from tsleep(k, "nap", timo=6)

        kernel.sched.spawn("napper", body)
        kernel.sched.run()
        assert fired == [7]

    def test_untimeout_cancels(self):
        kernel = booted_kernel()
        fired: list[int] = []
        callout = timeout(kernel, lambda k, arg: fired.append(arg), 1, ticks=2)
        assert untimeout(kernel, callout)

        def body(k, proc):
            yield from tsleep(k, "nap", timo=6)

        kernel.sched.spawn("napper", body)
        kernel.sched.run()
        assert fired == []

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            timeout(booted_kernel(), lambda k, a: None, None, ticks=-1)

    def test_clock_interrupt_cost_band(self):
        """Paper: "the regular clock tick interrupt took on average 94
        microseconds to execute" (including ~24 us of AST emulation)."""
        kernel = booted_kernel()

        def body(k, proc):
            yield from tsleep(k, "nap", timo=20)

        kernel.sched.spawn("napper", body)
        start = kernel.machine.now_ns
        kernel.sched.run()
        elapsed_ns = kernel.machine.now_ns - start
        ticks = kernel.machine.clock_chip.ticks_delivered
        assert ticks >= 20
        # Everything except the idle gaps is clock-interrupt work here.
        sleep_window_ns = ticks * 10_000_000
        busy_ns = elapsed_ns - sleep_window_ns
        per_tick_us = abs(busy_ns) / ticks / 1_000 if ticks else 0
        # Loose band: process setup/teardown pollutes a little.
        assert per_tick_us < 200


class TestSyscallPlumbing:
    def test_unknown_syscall(self):
        kernel = booted_kernel()
        failures: list[str] = []

        def body(k, proc):
            try:
                yield from syscall(k, proc, "frobnicate")
            except Exception as exc:
                failures.append(str(exc))

        kernel.sched.spawn("caller", body)
        kernel.sched.run()
        assert failures and "ENOSYS" in failures[0]

    def test_exit_status_propagates(self):
        kernel = booted_kernel()

        def body(k, proc):
            yield from syscall(k, proc, "exit", 7)

        proc = kernel.sched.spawn("exiting", body)
        kernel.sched.run()
        assert proc.exit_status == 7
