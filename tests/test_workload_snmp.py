"""Tests for the SNMP MIB-search case study structures and workload."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.system import build_case_study
from repro.workloads.snmp import BtreeMib, LinearMib, make_mib, snmp_agent_run


class TestMibStructures:
    def test_linear_finds_everything(self):
        entries = make_mib(100)
        mib = LinearMib(entries)
        for oid, value in entries:
            found, _ = mib.lookup(oid)
            assert found == value

    def test_btree_finds_everything(self):
        entries = make_mib(500)
        mib = BtreeMib(entries)
        for oid, value in entries:
            found, _ = mib.lookup(oid)
            assert found == value, f"B-tree lost {oid}"

    def test_missing_oid(self):
        entries = make_mib(50)
        missing = (9, 9, 9)
        assert LinearMib(entries).lookup(missing)[0] is None
        assert BtreeMib(entries).lookup(missing)[0] is None

    def test_btree_needs_far_fewer_comparisons(self):
        entries = make_mib(600)
        linear = LinearMib(entries)
        btree = BtreeMib(entries)
        linear_total = sum(linear.lookup(oid)[1] for oid, _ in entries)
        btree_total = sum(btree.lookup(oid)[1] for oid, _ in entries)
        assert linear_total > 10 * btree_total

    @given(size=st.integers(min_value=1, max_value=900))
    def test_btree_equivalent_to_linear(self, size):
        """Property: both structures answer every query identically."""
        entries = make_mib(size)
        linear = LinearMib(entries)
        btree = BtreeMib(entries)
        probes = [entries[(i * 13) % size][0] for i in range(min(size, 25))]
        probes.append((9, 9, 9, 9))
        for oid in probes:
            assert linear.lookup(oid)[0] == btree.lookup(oid)[0]


class TestSnmpWorkload:
    def test_agent_answers_all_requests(self):
        system = build_case_study()
        result = snmp_agent_run(
            system.kernel, mib_kind="btree", mib_size=200, requests=10,
            names=system.names,
        )
        assert result.hits == 10
        assert result.comparisons > 0

    def test_linear_agent_slower(self):
        fast = build_case_study()
        btree = snmp_agent_run(
            fast.kernel, mib_kind="btree", mib_size=400, requests=10,
            names=fast.names,
        )
        slow = build_case_study()
        linear = snmp_agent_run(
            slow.kernel, mib_kind="linear", mib_size=400, requests=10,
            names=slow.names,
        )
        assert linear.us_per_request > 2 * btree.us_per_request

    def test_unprofiled_run_supported(self):
        system = build_case_study()
        result = snmp_agent_run(
            system.kernel, mib_kind="linear", mib_size=50, requests=5,
            profile_user=False,
        )
        assert result.hits == 5
        assert system.kernel.stats.get("user_triggers", 0) == 0
