"""Tests for the system-call layer: descriptors, fork/exec/wait/exit."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.proc import NOFILE, Proc, ProcState, closef, falloc, fdalloc
from repro.kernel.sched import user_mode
from repro.kernel.syscalls import syscall
from repro.kernel.vm.vm_glue import ExecImage


def fullkernel() -> Kernel:
    kernel = Kernel()
    kernel.boot(with_network=False, with_console=False)
    return kernel


class TestDescriptors:
    def test_fdalloc_lowest_free(self):
        kernel = Kernel()
        proc = Proc(pid=1, name="t")
        assert fdalloc(kernel, proc) == 0
        proc.files[0] = object()  # type: ignore[assignment]
        proc.files[1] = object()  # type: ignore[assignment]
        assert fdalloc(kernel, proc) == 2

    def test_fdalloc_emfile(self):
        kernel = Kernel()
        proc = Proc(pid=1, name="t")
        proc.files = [object()] * NOFILE  # type: ignore[list-item]
        with pytest.raises(OSError, match="EMFILE"):
            fdalloc(kernel, proc)

    def test_falloc_and_closef(self):
        kernel = Kernel()
        proc = Proc(pid=1, name="t")
        fd, file = falloc(kernel, proc, kind="socket", data="S")
        assert proc.files[fd] is file
        closef(kernel, proc, fd)
        assert proc.files[fd] is None

    def test_closef_bad_fd(self):
        kernel = Kernel()
        proc = Proc(pid=1, name="t")
        with pytest.raises(KeyError, match="EBADF"):
            closef(kernel, proc, 3)

    def test_falloc_cost_band(self):
        """Figure 4: falloc 83 us total (fdalloc + malloc inside)."""
        kernel = Kernel()
        proc = Proc(pid=1, name="t")
        from repro.kernel.malloc import malloc

        malloc(kernel, 64, "file")  # warm the bucket
        before = kernel.machine.now_ns
        falloc(kernel, proc)
        us = (kernel.machine.now_ns - before) / 1_000
        assert 40 <= us <= 130


class TestForkExecWait:
    def test_fork_exec_wait_exit_lifecycle(self):
        kernel = fullkernel()
        events: list[str] = []
        image = ExecImage(name="prog", text_pages=8, data_pages=4)
        kernel.exec_images = {"prog": image}

        def parent(k, proc):
            fd = yield from syscall(k, proc, "open", "/prog", True)
            yield from syscall(k, proc, "write", fd, b"#!" + bytes(100))
            yield from syscall(k, proc, "close", fd)

            def child_body(ck, child):
                events.append("child-start")
                yield from syscall(ck, child, "execve", "/prog", ("arg1",))
                events.append("child-execed")
                yield from syscall(ck, child, "exit", 3)

            child = yield from syscall(k, proc, "fork", child_body)
            events.append(f"forked-{child.pid}")
            pid, status = yield from syscall(k, proc, "wait")
            events.append(f"reaped-{pid}-{status}")
            yield from syscall(k, proc, "exit", 0)

        parent_proc = kernel.sched.spawn("parent", parent)
        kernel.sched.run(until_ns=600_000_000_000)
        assert f"forked-{parent_proc.pid + 1}" in events
        assert "child-execed" in events
        assert f"reaped-{parent_proc.pid + 1}-3" in events

    def test_fork_duplicates_descriptors(self):
        kernel = fullkernel()
        refcounts: list[int] = []

        def parent(k, proc):
            fd = yield from syscall(k, proc, "open", "/shared", True)

            def child_body(ck, child):
                refcounts.append(child.file_for(fd).refcount)
                yield from syscall(ck, child, "exit", 0)

            yield from syscall(k, proc, "fork", child_body)
            yield from syscall(k, proc, "wait")
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("parent", parent)
        kernel.sched.run(until_ns=600_000_000_000)
        assert refcounts == [2]

    def test_exec_renames_process(self):
        kernel = fullkernel()
        names: list[str] = []

        def body(k, proc):
            fd = yield from syscall(k, proc, "open", "/newprog", True)
            yield from syscall(k, proc, "write", fd, bytes(64))
            yield from syscall(k, proc, "close", fd)
            yield from syscall(k, proc, "execve", "/newprog")
            names.append(proc.name)
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("oldname", body)
        kernel.sched.run(until_ns=600_000_000_000)
        assert names == ["newprog"]

    def test_exec_missing_image_fails(self):
        kernel = fullkernel()
        failures: list[str] = []

        def body(k, proc):
            try:
                yield from syscall(k, proc, "execve", "/ghost")
            except Exception as exc:
                failures.append(str(exc))
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("execfail", body)
        kernel.sched.run(until_ns=600_000_000_000)
        assert failures and "ENOENT" in failures[0]

    def test_exit_frees_address_space(self):
        kernel = fullkernel()

        def body(k, proc):
            from repro.kernel.vm.vm_glue import vmspace_exec

            vmspace_exec(k, proc, ExecImage(name="t", text_pages=4))
            yield from user_mode(k, 10)
            yield from syscall(k, proc, "exit", 0)

        proc = kernel.sched.spawn("exiting", body)
        kernel.sched.run(until_ns=600_000_000_000)
        assert proc.vmspace is None
        assert proc.state is ProcState.SZOMB
