"""Old-vs-new capture parity: the optimized hot path must be invisible.

The capture-side optimization (bucketed interrupt queue with a cached
per-ipl horizon, bus decode cache, pre-resolved Profiler tap, fused cost
charging) promises one thing above all: every captured ``RawRecord``
stream — tags, wrapped 24-bit times, order — is **byte-identical** to
what the preserved reference engine produces.  These tests pin that
promise at three levels:

* whole-system: the golden Figure 3/4 (network receive) and Figure 5
  (fork/exec) workloads, run on both engines, byte-compared;
* kernel-level: randomized interrupt/spl schedules driven through a pair
  of bare kernels (optimized vs reference), comparing captures, handler
  delivery instants, final clock values and interrupt statistics;
* instant-level: an interrupt posted while spl-masked must be delivered
  at the exact nanosecond the level drops, identically on both engines.

Plus the regression guards that ride along: the ``kstack_desync`` stat
on mismatched ``leave`` and the bus-generation guard that forces the
pre-resolved tap to re-decode (and fault) after the adapter is unplugged.
"""

from __future__ import annotations

import random

import pytest

from repro.kernel.intr import ISAINTR_META, splx
from repro.kernel.kernel import Kernel
from repro.kernel.kfunc import KFuncMeta
from repro.profiler.eprom import PiggyBackAdapter
from repro.profiler.hardware import ProfilerBoard
from repro.sim.bus import BusError
from repro.sim.engine import InterruptLine, ReferenceInterruptQueue
from repro.sim.machine import Machine
from repro.system import build_case_study
from repro.workloads.forkexec import fork_exec_storm
from repro.workloads.network_recv import network_receive

# Manual profile-map metas: deliberately NOT @kfunc-registered, so these
# tests cannot perturb the global registry's import-order tag assignment.
META_A = KFuncMeta(name="parity_fn_a", module="test/parity", base_ns=1_800)
META_B = KFuncMeta(name="parity_fn_b", module="test/parity", base_ns=350)
PARITY_TAGS = {"parity_fn_a": 0x10, "parity_fn_b": 0x12}


def capture_bytes(capture) -> bytes:
    return b"".join(record.pack() for record in capture.records)


def make_kernel(engine: str, depth: int = 4096) -> tuple[Kernel, ProfilerBoard]:
    """A bare profiling kernel on the requested engine (no boot)."""
    machine = Machine()
    if engine == "reference":
        machine.interrupts = ReferenceInterruptQueue()
        machine.bus.decode_cache = False
    kernel = Kernel(machine)
    if engine == "reference":
        kernel.fastpath_enabled = False
    board = ProfilerBoard(depth=depth)
    kernel.attach_profiler(PiggyBackAdapter(board))
    kernel.set_profile_map(dict(PARITY_TAGS), {})
    return kernel, board


# ---------------------------------------------------------------------------
# Whole-system parity on the golden workloads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "label, workload",
    [
        ("figure3+4-network", lambda k: network_receive(k, total_packets=6)),
        ("figure5-forkexec", lambda k: fork_exec_storm(k, iterations=1)),
    ],
    ids=["network", "forkexec"],
)
def test_golden_workload_capture_byte_identical(label, workload):
    streams = {}
    for engine in ("optimized", "reference"):
        system = build_case_study(engine=engine)
        capture = system.profile(lambda: workload(system.kernel), label=label)
        streams[engine] = (
            capture_bytes(capture),
            capture.overflowed,
            system.machine.now_ns,
            system.kernel.stats["triggers"],
            system.kernel.stats["intr"],
        )
    assert streams["optimized"] == streams["reference"]
    # And the stream is non-trivial — an empty capture proves nothing.
    assert len(streams["optimized"][0]) > 0


# ---------------------------------------------------------------------------
# Randomized interrupt/spl schedules on bare kernels
# ---------------------------------------------------------------------------


def build_schedule(seed: int, ops: int = 400) -> list[tuple]:
    """A reproducible schedule of enter/leave, posts, spl moves, work."""
    rng = random.Random(seed)
    schedule: list[tuple] = []
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.40:
            schedule.append(("call", rng.randint(0, 1), rng.randint(100, 4_000)))
        elif roll < 0.65:
            schedule.append(("post", rng.randint(0, 2), rng.randint(200, 60_000)))
        elif roll < 0.85:
            schedule.append(("spl", rng.choice((0, 2, 3, 5, 6))))
        else:
            schedule.append(("work", rng.randint(50, 25_000)))
    return schedule


def run_schedule(engine: str, schedule: list[tuple]):
    kernel, board = make_kernel(engine)
    fired: list[tuple[str, int]] = []

    def make_line(irq: int, ipl: int, name: str) -> InterruptLine:
        def handler() -> None:
            fired.append((name, kernel.machine.now_ns))
            kernel.work(1_500)

        return InterruptLine(irq=irq, name=name, ipl=ipl, handler=handler)

    lines = [
        make_line(3, 2, "softish"),
        make_line(5, 3, "net"),
        make_line(9, 6, "clockish"),
    ]
    metas = [META_A, META_B]
    board.arm()
    for op in schedule:
        if op[0] == "call":
            _, which, body_ns = op
            meta = metas[which]
            kernel.enter(meta)
            kernel.work(body_ns)
            kernel.leave(meta)
        elif op[0] == "post":
            _, which, delta_ns = op
            kernel.machine.interrupts.post(
                lines[which], kernel.machine.now_ns + delta_ns
            )
        elif op[0] == "spl":
            splx(kernel, op[1])
        else:
            kernel.work(op[1])
    splx(kernel, 0)
    kernel.work(100_000)  # drain stragglers
    board.disarm()
    ram = board.pull_rams()
    stream = b"".join(record.pack() for record in ram.records())
    return stream, tuple(fired), kernel.machine.now_ns, dict(kernel.stats)


@pytest.mark.parametrize("seed", [1, 7, 0xBEEF, 20260806])
def test_randomized_schedule_parity(seed):
    schedule = build_schedule(seed)
    fast = run_schedule("optimized", schedule)
    ref = run_schedule("reference", schedule)
    assert fast[0] == ref[0]  # RawRecord stream, byte for byte
    assert fast[1] == ref[1]  # every handler fired at the same instant
    assert fast[2] == ref[2]  # clocks agree
    assert fast[3] == ref[3]  # stats agree


# ---------------------------------------------------------------------------
# Exact-instant delivery when spl drops
# ---------------------------------------------------------------------------


def masked_drop_instants(engine: str) -> tuple[int, int, int]:
    kernel, board = make_kernel(engine)
    fired: list[int] = []
    line = InterruptLine(
        irq=5, name="net", ipl=3, handler=lambda: fired.append(kernel.machine.now_ns)
    )
    kernel.ipl = 5  # mask the line
    due = kernel.machine.now_ns + 1_000
    kernel.machine.interrupts.post(line, due)
    board.arm()
    kernel.work(50_000)  # due passes while masked: must NOT deliver
    assert fired == []
    drop_ns = kernel.machine.now_ns
    kernel.ipl = 0
    kernel.check_interrupts()  # the spl-drop delivery path
    assert len(fired) == 1
    return due, drop_ns, fired[0]


def test_masked_interrupt_fires_at_the_instant_spl_drops():
    fast = masked_drop_instants("optimized")
    ref = masked_drop_instants("reference")
    assert fast == ref
    due, drop_ns, fired_ns = fast
    # Held well past due, then delivered inside the ISAINTR frame opened
    # at the drop instant: the only time between the drop and the handler
    # is the frame's own prologue (call + entry trigger + base cost).
    # (ISAINTR is not in the parity tag map, so no trigger charge here.)
    kernel = Kernel()
    overhead = kernel.cost.call_ns + ISAINTR_META.base_ns
    assert drop_ns > due
    assert fired_ns == drop_ns + overhead


def test_splx_delivery_instant_matches_across_engines():
    """Same check through the real splx() path, which charges mask-update
    costs before delivering."""
    instants = {}
    for engine in ("optimized", "reference"):
        kernel, board = make_kernel(engine)
        fired: list[int] = []
        line = InterruptLine(
            irq=5,
            name="net",
            ipl=3,
            handler=lambda: fired.append(kernel.machine.now_ns),
        )
        kernel.ipl = 5
        kernel.machine.interrupts.post(line, kernel.machine.now_ns + 2_000)
        board.arm()
        kernel.work(10_000)
        assert fired == []
        splx(kernel, 0)
        assert len(fired) == 1
        instants[engine] = (fired[0], kernel.machine.now_ns)
    assert instants["optimized"] == instants["reference"]


# ---------------------------------------------------------------------------
# kstack desync regression (satellite)
# ---------------------------------------------------------------------------


class TestKstackDesync:
    def test_mismatched_leave_bumps_stat_and_preserves_stack(self):
        kernel = Kernel()
        kernel.enter(META_A)
        assert kernel.kstack == ["parity_fn_a"]
        kernel.leave(META_B)  # mismatched pop: must not eat parity_fn_a
        assert kernel.stats["kstack_desync"] == 1
        assert kernel.kstack == ["parity_fn_a"]
        kernel.leave(META_A)
        assert kernel.kstack == []
        assert kernel.stats["kstack_desync"] == 1

    def test_leave_on_empty_stack_counts_as_desync(self):
        kernel = Kernel()
        kernel.leave(META_A)
        assert kernel.stats["kstack_desync"] == 1

    def test_balanced_nesting_never_bumps_the_stat(self):
        kernel = Kernel()
        for _ in range(10):
            kernel.enter(META_A)
            kernel.enter(META_B)
            kernel.leave(META_B)
            kernel.leave(META_A)
        assert kernel.stats["kstack_desync"] == 0


# ---------------------------------------------------------------------------
# Pre-resolved tap: the bus generation guard
# ---------------------------------------------------------------------------


class TestTapGenerationGuard:
    def test_fused_strobe_reaches_the_board(self):
        kernel, board = make_kernel("optimized")
        board.arm()
        kernel.enter(META_A)
        kernel.leave(META_A)
        assert board.events_stored == 2
        records = board.pull_rams().records()
        assert [r.tag for r in records] == [0x10, 0x11]

    def test_trigger_after_unplug_raises_bus_error(self):
        machine = Machine()
        kernel = Kernel(machine)
        board = ProfilerBoard(depth=64)
        adapter = PiggyBackAdapter(board)
        kernel.attach_profiler(adapter)
        kernel.set_profile_map(dict(PARITY_TAGS), {})
        board.arm()
        kernel.enter(META_A)
        kernel.leave(META_A)
        assert board.events_stored == 2
        adapter.unplug()
        # The cached tap was resolved against the old bus generation; the
        # strobe must re-decode and fault exactly like the unoptimized
        # read8 path would.
        with pytest.raises(BusError):
            kernel.enter(META_A)

    def test_replug_after_unplug_resolves_the_new_window(self):
        machine = Machine()
        kernel = Kernel(machine)
        board = ProfilerBoard(depth=64)
        adapter = PiggyBackAdapter(board)
        kernel.attach_profiler(adapter)
        kernel.set_profile_map(dict(PARITY_TAGS), {})
        adapter.unplug()
        replacement_board = ProfilerBoard(depth=64)
        replacement = PiggyBackAdapter(replacement_board)
        kernel.attach_profiler(replacement)
        replacement_board.arm()
        kernel.enter(META_A)
        kernel.leave(META_A)
        assert replacement_board.events_stored == 2
        assert board.events_stored == 0
