"""Tests for the per-process timeline view."""

from __future__ import annotations

from repro.analysis.callstack import analyze_capture
from repro.analysis.timeline import (
    Span,
    interrupt_spans,
    process_spans,
    render_timeline,
    utilization_by_proc,
)

from stream_helpers import stream


def two_proc_capture(simple_names):
    return stream(
        simple_names,
        (">", "main", 0),
        (">", "tsleep", 100),
        (">", "swtch", 110),
        ("<", "swtch", 150),
        (">", "read", 160),        # fresh proc B
        (">", "tsleep", 380),
        (">", "swtch", 390),
        ("<", "swtch", 420),
        ("<", "tsleep", 430),      # back to A
        ("<", "main", 600),
    )


class TestSpans:
    def test_process_spans_split_by_proc(self, simple_names):
        analysis = analyze_capture(two_proc_capture(simple_names))
        spans = process_spans(analysis)
        assert len(spans) == 2
        all_spans = [s for items in spans.values() for s in items]
        assert Span(0, 600) in all_spans        # proc A's main
        assert any(s.start_us == 160 for s in all_spans)  # proc B

    def test_touching_spans_merge(self, simple_names):
        capture = stream(
            simple_names,
            (">", "main", 0),
            ("<", "main", 100),
            (">", "read", 100),  # back-to-back: rendered as one span
            ("<", "read", 150),
        )
        analysis = analyze_capture(capture)
        spans = process_spans(analysis)
        (proc_spans,) = spans.values()
        assert proc_spans == [Span(0, 150)]

    def test_interrupt_spans(self, simple_names):
        capture = stream(
            simple_names,
            (">", "main", 0),
            (">", "intr", 50),
            ("<", "intr", 80),
            ("<", "main", 200),
        )
        analysis = analyze_capture(capture)
        spans = interrupt_spans(analysis, name="intr")
        assert spans == [Span(50, 80)]


class TestRender:
    def test_rows_per_proc(self, simple_names):
        analysis = analyze_capture(two_proc_capture(simple_names))
        art = render_timeline(analysis, width=60)
        lines = art.splitlines()
        assert len(lines) == 3  # two procs + axis (no interrupts here)
        assert lines[0].startswith("P0")
        assert "#" in lines[0] and "#" in lines[1]

    def test_empty(self, simple_names):
        analysis = analyze_capture(stream(simple_names))
        assert render_timeline(analysis) == "(empty capture)"

    def test_axis_shows_wall(self, simple_names):
        analysis = analyze_capture(two_proc_capture(simple_names))
        assert "600 us" in render_timeline(analysis)

    def test_real_capture_renders(self):
        from repro.system import build_case_study
        from repro.workloads.network_recv import network_receive

        system = build_case_study()
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=6)
        )
        art = render_timeline(system.analyze(capture))
        assert "^" in art  # interrupts visible


class TestUtilization:
    def test_shares(self, simple_names):
        analysis = analyze_capture(two_proc_capture(simple_names))
        shares = utilization_by_proc(analysis)
        total_window = 600
        a_share = shares[analysis.roots[0].proc]
        assert abs(a_share - 1.0) < 1e-9  # A's main spans the window
        # B was suspended at the swtch exit (420 us) and never resumed,
        # so its truncated span ends there.
        b_share = [v for p, v in shares.items() if v != a_share][0]
        assert abs(b_share - (420 - 160) / total_window) < 0.02
