"""Atomic report writes: repro.atomicio and the CLI sites that use it."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.__main__ import main
from repro.atomicio import write_text_atomic

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


class TestWriteTextAtomic:
    def test_appends_exactly_one_newline(self, tmp_path):
        target = tmp_path / "out.json"
        write_text_atomic(target, "{}")
        assert target.read_text() == "{}\n"
        write_text_atomic(target, "{}\n")
        assert target.read_text() == "{}\n"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old " * 1000)
        write_text_atomic(target, "new")
        assert target.read_text() == "new\n"

    def test_leaves_no_temp_files(self, tmp_path):
        write_text_atomic(tmp_path / "out.txt", "payload")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_preserves_old_content_and_cleans_up(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "out.txt"
        write_text_atomic(target, "original")

        class Boom(Exception):
            pass

        def exploding_replace(src, dst):
            raise Boom()

        # Fail at the final rename: the destination must keep its old
        # content and the temp file must not leak.
        import repro.atomicio as atomicio

        monkeypatch.setattr(atomicio.os, "replace", exploding_replace)
        with pytest.raises(Boom):
            write_text_atomic(target, "replacement\n")
        assert target.read_text() == "original\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_returns_target_path(self, tmp_path):
        result = write_text_atomic(tmp_path / "out.txt", "x")
        assert result == tmp_path / "out.txt"


class TestCliWriteSites:
    def test_trace_export_ends_with_newline(self, tmp_path):
        out = tmp_path / "fig3.trace.json"
        code = main(
            [
                "trace", "export", str(GOLDEN_DIR / "figure3_network_v2.mpf"),
                "--names", str(GOLDEN_DIR / "case_study.tags"),
                "-o", str(out),
            ],
            out=lambda _line: None,
        )
        assert code == 0
        text = out.read_text()
        assert text.endswith("\n") and not text.endswith("\n\n")
        assert json.loads(text)["traceEvents"]
        assert [p.name for p in tmp_path.iterdir()] == [out.name]
