"""Tests for the buffer cache, FFS, the IDE driver and NFS."""

from __future__ import annotations

import pytest

from repro.kernel.drivers.wd import SECTORS_PER_BLOCK, WdDisk
from repro.kernel.fs.buf import BLOCK_BYTES
from repro.kernel.fs.ffs import FfsError
from repro.kernel.fs.nfs import (
    NfsMount,
    NfsServerHost,
    nfs_lookup,
    nfs_read,
    nfs_write,
    pack_reply,
    pack_request,
    unpack_reply,
    unpack_request,
)
from repro.kernel.kernel import Kernel
from repro.kernel.proc import Proc
from repro.kernel.syscalls import syscall


def fskernel() -> Kernel:
    kernel = Kernel()
    kernel.boot(with_network=False, with_console=False)
    return kernel


def run_proc(kernel: Kernel, body) -> dict:
    """Run one process body to completion; returns its shared state dict."""
    state: dict = {}

    def wrapper(k, proc: Proc):
        result = yield from body(k, proc, state)
        state["result"] = result
        yield from syscall(k, proc, "exit", 0)

    kernel.sched.spawn("fstest", wrapper)
    kernel.sched.run(until_ns=kernel.machine.now_ns + 600_000_000_000)
    return state


class TestFfsRoundtrip:
    def test_write_then_read_back_through_cache(self):
        kernel = fskernel()
        payload = bytes(range(256)) * 40  # 10240 bytes

        def body(k, proc, state):
            fd = yield from syscall(k, proc, "open", "/f1", True)
            yield from syscall(k, proc, "write", fd, payload)
            yield from syscall(k, proc, "close", fd)
            fd = yield from syscall(k, proc, "open", "/f1")
            data = yield from syscall(k, proc, "read", fd, len(payload))
            state["data"] = data
            return len(data)

        state = run_proc(kernel, body)
        assert state["data"] == payload

    def test_data_survives_on_the_platter(self):
        """After a sync write, the bytes are really on the disk image."""
        kernel = fskernel()
        payload = b"\xa5" * BLOCK_BYTES

        def body(k, proc, state):
            fd = yield from syscall(k, proc, "open", "/f2", True)
            n = yield from syscall(k, proc, "write", fd, payload, True)
            return n

        run_proc(kernel, body)
        disk: WdDisk = kernel.filesystem.disk
        inode = kernel.filesystem.volume.iget(
            kernel.filesystem.volume.root.entries["f2"]
        )
        physical = inode.blocks[0]
        first_sector = disk.read_sector(physical * SECTORS_PER_BLOCK)
        assert first_sector == b"\xa5" * 512

    def test_hole_reads_zero(self):
        kernel = fskernel()

        def body(k, proc, state):
            fd = yield from syscall(k, proc, "open", "/holey", True)
            file = proc.file_for(fd)
            file.data.node.size = 2 * BLOCK_BYTES  # declare a hole
            data = yield from syscall(k, proc, "read", fd, 100)
            state["data"] = data
            return 0

        state = run_proc(kernel, body)
        assert state["data"] == bytes(100)

    def test_read_past_eof_is_short(self):
        kernel = fskernel()

        def body(k, proc, state):
            fd = yield from syscall(k, proc, "open", "/small", True)
            yield from syscall(k, proc, "write", fd, b"abc")
            yield from syscall(k, proc, "close", fd)
            fd = yield from syscall(k, proc, "open", "/small")
            state["data"] = yield from syscall(k, proc, "read", fd, 100)
            return 0

        state = run_proc(kernel, body)
        assert state["data"] == b"abc"

    def test_lookup_missing_raises_enoent(self):
        kernel = fskernel()
        failures: list[str] = []

        def body(k, proc, state):
            try:
                yield from syscall(k, proc, "open", "/nope")
            except FfsError as exc:
                failures.append(str(exc))
            return 0

        run_proc(kernel, body)
        assert failures and "ENOENT" in failures[0]

    def test_create_twice_raises_eexist(self):
        kernel = fskernel()
        failures: list[str] = []

        def body(k, proc, state):
            from repro.kernel.fs.ffs import ffs_create

            volume = k.filesystem.volume
            yield from ffs_create(k, volume, volume.root, "dup")
            try:
                yield from ffs_create(k, volume, volume.root, "dup")
            except FfsError as exc:
                failures.append(str(exc))
            return 0

        run_proc(kernel, body)
        assert failures and "EEXIST" in failures[0]


class TestBufferCache:
    def test_second_read_hits_cache(self):
        """First read of a cold file pays the disk; the re-read does not."""
        from repro.workloads.fileio import seed_far_files

        kernel = fskernel()
        seed_far_files(kernel, nblocks=1)  # platter-only content, cold cache

        def body(k, proc, state):
            cache = k.filesystem.cache
            fd = yield from syscall(k, proc, "open", "/near")
            t0 = k.now_us
            first = yield from syscall(k, proc, "read", fd, BLOCK_BYTES)
            state["first_us"] = k.now_us - t0
            state["hits_before"] = cache.hits
            file = proc.file_for(fd)
            file.offset = 0
            t0 = k.now_us
            second = yield from syscall(k, proc, "read", fd, BLOCK_BYTES)
            state["second_us"] = k.now_us - t0
            state["hits_after"] = cache.hits
            state["same"] = first == second
            return 0

        state = run_proc(kernel, body)
        assert state["same"]
        assert state["hits_after"] > state["hits_before"]
        # The cached read skips the disk entirely: no seek/rotation,
        # which is multiple milliseconds on this drive.
        assert state["second_us"] < state["first_us"] - 2_000

    def test_eviction_writes_back_dirty_victim(self):
        kernel = fskernel()
        from repro.kernel.fs.buf import BufferCache

        nbufs = BufferCache.NBUF

        def body(k, proc, state):
            fd = yield from syscall(k, proc, "open", "/big", True)
            # More dirty partial blocks than the cache holds: the LRU
            # victim must be written back, not dropped.
            for i in range(nbufs + 8):
                file = proc.file_for(fd)
                file.offset = i * BLOCK_BYTES
                yield from syscall(k, proc, "write", fd, b"Z" * 100)
            return 0

        run_proc(kernel, body)
        assert kernel.filesystem.disk.writes > 0


class TestDiskTiming:
    def test_read_latency_band(self):
        """Paper: "Each read of the disc varied from 18 milliseconds up
        to 26 milliseconds" (seek-heavy multi-file pattern)."""
        from repro.workloads.fileio import file_read_back

        kernel = fskernel()
        result = file_read_back(kernel, nblocks=8)
        assert result.per_op_us
        mean_ms = result.mean_op_us / 1_000
        assert 12 <= mean_ms <= 30
        assert max(result.per_op_us) / 1_000 <= 35

    def test_write_interrupt_cadence(self):
        """Paper: write interrupts ~200 us apart-ish, <100 us gaps."""
        from repro.kernel.drivers.wd import SECTOR_GAP_NS

        assert SECTOR_GAP_NS < 100_000

    def test_sector_roundtrip(self):
        disk = WdDisk()
        disk.write_sector(5, b"\x42" * 512)
        assert disk.read_sector(5) == b"\x42" * 512
        assert disk.read_sector(6) == bytes(512)  # unwritten

    def test_bad_sector_write_rejected(self):
        with pytest.raises(ValueError):
            WdDisk().write_sector(0, b"short")

    def test_seek_model_monotone_in_distance(self):
        disk = WdDisk()
        disk.current_cyl = 0
        near = disk.seek_ns(600)  # ~1 cylinder away
        disk.current_cyl = 0
        far = disk.seek_ns(200_000)
        assert far > near > 0
        disk.current_cyl = 10
        assert disk.seek_ns(10 * 512) == 0  # same cylinder


class TestNfs:
    def test_rpc_codec_roundtrip(self):
        blob = pack_request(7, 6, 42, 1024, b"abc")
        assert unpack_request(blob) == (7, 6, 42, 1024, b"abc")
        blob = pack_reply(7, 0, 99, b"data")
        assert unpack_reply(blob) == (7, 0, 99, b"data")

    def nfs_kernel(self) -> tuple[Kernel, NfsServerHost, NfsMount]:
        kernel = Kernel()
        kernel.boot(with_disk=False, with_console=False)
        server = NfsServerHost()
        kernel.netstack.wire.attach_remote(server)
        mount = NfsMount(kernel, server)
        return kernel, server, mount

    def test_lookup_read_roundtrip(self):
        kernel, server, mount = self.nfs_kernel()
        content = bytes(range(256)) * 10
        server.export("file1", content)
        state: dict = {}

        def body(k, proc: Proc):
            node = yield from nfs_lookup(k, mount, mount.root, "file1")
            state["size"] = node.size
            data = yield from nfs_read(k, mount, node, 0, len(content))
            state["data"] = data
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("nfsc", body)
        kernel.sched.run(until_ns=60_000_000_000)
        assert state["size"] == len(content)
        assert state["data"] == content

    def test_write_roundtrip(self):
        kernel, server, mount = self.nfs_kernel()
        fh = server.export("out", b"")
        state: dict = {}

        def body(k, proc: Proc):
            node = yield from nfs_lookup(k, mount, mount.root, "out")
            n = yield from nfs_write(k, mount, node, 0, b"written-bytes" * 100)
            state["n"] = n
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("nfsw", body)
        kernel.sched.run(until_ns=60_000_000_000)
        assert state["n"] == 1300
        assert server.files[fh].data == b"written-bytes" * 100

    def test_lookup_missing_fails(self):
        kernel, server, mount = self.nfs_kernel()
        failures: list[str] = []

        def body(k, proc: Proc):
            try:
                yield from nfs_lookup(k, mount, mount.root, "ghost")
            except OSError as exc:
                failures.append(str(exc))
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("nfsl", body)
        kernel.sched.run(until_ns=60_000_000_000)
        assert failures

    def test_rpc_turnaround_recorded(self):
        """The paper: "it was easy to get accurate measurements of the
        network turn around time with NFS RPC calls"."""
        kernel, server, mount = self.nfs_kernel()
        server.export("file1", bytes(4096))

        def body(k, proc: Proc):
            node = yield from nfs_lookup(k, mount, mount.root, "file1")
            yield from nfs_read(k, mount, node, 0, 2048)
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("nfst", body)
        kernel.sched.run(until_ns=60_000_000_000)
        turnarounds = mount.turnaround_us()
        assert len(turnarounds) == 3  # lookup + two 1K reads
        assert all(t > 0 for t in turnarounds)
