"""Versioned capture interchange (MPF2) and the salvaging decoder.

Covers the transfer-path robustness layer: MPF2 round-trips every
``Capture`` field, both header versions cross-read, short reads on
pipe-like streams reassemble, non-seekable streaming targets fail fast,
and a fault-injection corpus (truncation, bit flips, header lies) goes
through ``salvage_capture_stream`` / ``repro capture doctor`` /
``analyze --salvage`` instead of raising.
"""

from __future__ import annotations

import io
import pathlib
import zlib

import pytest

from repro.instrument.namefile import NameTable
from repro.profiler.capture import Capture, synthetic_capture
from repro.profiler.ram import RawRecord, TraceRam
from repro.profiler.upload import (
    MAGIC,
    MAGIC_V2,
    CaptureMetadataWarning,
    EpromReadback,
    dump_records,
    iter_capture_file,
    read_capture,
    read_capture_file,
    salvage_capture,
    salvage_capture_stream,
    write_capture_file,
    write_capture_stream,
)
from repro.__main__ import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

RECORDS = [RawRecord(tag=500 + (i % 4), time=(i * 321) & 0xFFFF) for i in range(20)]


def _names() -> NameTable:
    table = NameTable()
    from repro.instrument.namefile import parse_line

    for line in ("main/500", "bcopy/502"):
        entry = parse_line(line)
        assert entry is not None
        table.add(entry)
    return table


def _v2_blob(records=RECORDS, **meta) -> bytes:
    buffer = io.BytesIO()
    write_capture_file(buffer, records, **meta)
    return buffer.getvalue()


def run_cli(*argv: str) -> tuple[int, str]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, "\n".join(lines)


class TestMpf2RoundTrip:
    def test_every_capture_field_survives(self, tmp_path):
        """The headline fix: a non-stock, overflowed, labelled capture
        reloads with nothing silently defaulted."""
        capture = Capture(
            records=tuple(RECORDS),
            names=_names(),
            overflowed=True,
            label="bench rig #7",
            counter_width_bits=16,
            counter_rate_hz=3_579_545,
        )
        path = tmp_path / "run.mpf"
        capture.save(path)
        again = Capture.load(path, capture.names)
        assert again.records == capture.records
        assert again.overflowed is True
        assert again.label == "bench rig #7"
        assert again.counter_width_bits == 16
        assert again.counter_rate_hz == 3_579_545
        assert again.defects == ()

    def test_explicit_label_beats_header_label(self, tmp_path):
        capture = synthetic_capture(RECORDS, _names(), label="saved-label")
        path = tmp_path / "run.mpf"
        capture.save(path)
        assert Capture.load(path, capture.names).label == "saved-label"
        assert Capture.load(path, capture.names, label="cli").label == "cli"

    def test_mpf1_load_warns_and_defaults(self, tmp_path):
        path = tmp_path / "legacy.mpf"
        with pytest.warns(CaptureMetadataWarning, match="MPF1"):
            write_capture_file(
                path, RECORDS, version=1, overflowed=True, counter_width_bits=16
            )
        with pytest.warns(CaptureMetadataWarning, match="defaulted"):
            loaded = Capture.load(path, _names())
        assert loaded.overflowed is False  # lost: MPF1 cannot carry it
        assert loaded.counter_width_bits == 24
        assert loaded.counter_rate_hz == 1_000_000
        assert loaded.records == tuple(RECORDS)

    def test_v1_writer_is_byte_identical_to_legacy_layout(self):
        buffer = io.BytesIO()
        write_capture_file(buffer, RECORDS[:3], version=1)
        expected = MAGIC + (3).to_bytes(4, "big") + dump_records(RECORDS[:3])
        assert buffer.getvalue() == expected

    def test_unicode_label_roundtrip(self):
        blob = _v2_blob(label="capturé ⏱")
        _, meta = read_capture(io.BytesIO(blob))
        assert meta.label == "capturé ⏱"

    def test_header_self_describes_its_size(self):
        """Unknown future header fields must be skipped, not misparsed:
        readers honour the header-size field, so appending bytes to the
        header (and bumping the size) keeps the records readable."""
        blob = bytearray(_v2_blob())
        header_size = int.from_bytes(blob[4:6], "big")
        blob[4:6] = (header_size + 4).to_bytes(2, "big")
        blob[header_size:header_size] = b"\xde\xad\xbe\xef"
        records, meta = read_capture(io.BytesIO(bytes(blob)))
        assert records == RECORDS
        assert meta.version == 2

    def test_bad_version_and_bad_metadata_rejected(self):
        with pytest.raises(ValueError, match="version"):
            write_capture_file(io.BytesIO(), RECORDS, version=3)
        with pytest.raises(ValueError, match="width"):
            write_capture_file(io.BytesIO(), RECORDS, counter_width_bits=25)
        with pytest.raises(ValueError, match="rate"):
            write_capture_file(io.BytesIO(), RECORDS, counter_rate_hz=0)


class TestCrossVersionReads:
    def test_both_readers_accept_both_versions(self):
        v1 = io.BytesIO()
        write_capture_file(v1, RECORDS, version=1)
        v2 = io.BytesIO(_v2_blob())
        v1.seek(0)
        assert read_capture_file(v1) == RECORDS
        assert read_capture_file(v2) == RECORDS
        v1.seek(0)
        v2.seek(0)
        assert list(iter_capture_file(v1)) == RECORDS
        assert list(iter_capture_file(v2)) == RECORDS

    def test_streaming_writer_matches_batch_writer_v2(self):
        streamed = io.BytesIO()
        write_capture_stream(
            streamed, iter(RECORDS), overflowed=True, label="x", counter_width_bits=20
        )
        batch = io.BytesIO()
        write_capture_file(
            batch, RECORDS, overflowed=True, label="x", counter_width_bits=20
        )
        assert streamed.getvalue() == batch.getvalue()

    def test_iter_detects_crc_corruption_at_end(self):
        blob = bytearray(_v2_blob())
        blob[-1] ^= 0x40  # flip a payload bit
        iterator = iter_capture_file(io.BytesIO(bytes(blob)))
        with pytest.raises(ValueError, match="CRC32"):
            list(iterator)

    def test_read_capture_detects_crc_corruption(self):
        blob = bytearray(_v2_blob())
        blob[30] ^= 0x01
        with pytest.raises(ValueError, match="CRC32"):
            read_capture(io.BytesIO(bytes(blob)))


class DribbleStream(io.BytesIO):
    """A pipe-like stream: read() returns at most 3 bytes per call."""

    def read(self, size=-1):
        return super().read(min(size, 3) if size and size > 0 else size)


class TestShortReads:
    @pytest.mark.parametrize("version", [1, 2])
    def test_header_reassembles_across_short_reads(self, version):
        buffer = io.BytesIO()
        write_capture_file(
            buffer, RECORDS, version=version,
            label="dribble" if version == 2 else "",
        )
        records = list(iter_capture_file(DribbleStream(buffer.getvalue())))
        assert records == RECORDS

    def test_read_capture_tolerates_short_reads(self):
        blob = _v2_blob(label="short-read")
        records, meta = read_capture(DribbleStream(blob))
        assert records == RECORDS
        assert meta.label == "short-read"


class _NoSeek:
    """A pipe-shaped target: write-only, refuses to seek."""

    def __init__(self):
        self.written = b""

    def write(self, blob):
        self.written += blob

    def seekable(self):
        return False


class TestStreamWriterGuards:
    def test_non_seekable_target_switches_to_open_stream(self):
        # MPF2 no longer needs a backpatch seek: a non-seekable target
        # gets the open-ended wire form (sentinel count + trailer).
        target = _NoSeek()
        count = write_capture_stream(target, iter(RECORDS))
        assert count == len(RECORDS)
        records, meta = read_capture(io.BytesIO(target.written))
        assert records == RECORDS
        assert meta.streamed and meta.count == len(RECORDS)

    def test_non_seekable_target_rejected_when_open_stream_refused(self):
        target = _NoSeek()
        with pytest.raises(ValueError, match="seekable"):
            write_capture_stream(target, iter(RECORDS), open_stream=False)
        assert target.written == b""  # nothing hit the wire first

    def test_non_seekable_v1_target_rejected_before_any_write(self):
        # MPF1 has no trailer to carry the count, so the old fail-fast
        # guard still protects it.
        target = _NoSeek()
        with pytest.raises(ValueError, match="seekable"):
            write_capture_stream(target, iter(RECORDS), version=1)
        assert target.written == b""

    def test_open_stream_v1_rejected(self):
        with pytest.raises(ValueError, match="MPF2 only"):
            write_capture_stream(
                io.BytesIO(), iter(RECORDS), version=1, open_stream=True
            )

    def test_target_without_seekable_probe_streams_open(self):
        class Bare:
            def __init__(self):
                self.written = b""

            def write(self, blob):
                self.written += blob

        target = Bare()
        count = write_capture_stream(target, iter(RECORDS))
        assert count == len(RECORDS)
        records, meta = read_capture(io.BytesIO(target.written))
        assert records == RECORDS and meta.streamed

    def test_count_overflow_diagnosed_not_overflowerror(self, monkeypatch):
        import repro.profiler.upload as upload

        monkeypatch.setattr(upload, "MAX_RECORDS", 10)
        with pytest.raises(ValueError, match="32-bit"):
            write_capture_stream(io.BytesIO(), iter(RECORDS))

        class Liar:
            def __len__(self):
                return 10

            def __iter__(self):  # pragma: no cover - len() fails first
                return iter(())

        with pytest.raises(ValueError, match="32-bit"):
            write_capture_file(io.BytesIO(), Liar())


class TestEpromReadbackPartialRam:
    def test_partially_filled_ram_reads_back_exactly(self):
        """Satellite: read_all over a RAM with most slots never written
        must return only the stored records, in store order."""
        ram = TraceRam(depth=64)
        stored = [RawRecord(tag=7 + i, time=i * 1000) for i in range(5)]
        for record in stored:
            ram.store(record.tag, record.time)
        assert EpromReadback(ram).read_all() == stored
        # The unwritten region still floats high, bank by bank.
        readback = EpromReadback(ram)
        readback.select_bank(2)
        assert readback.read(63) == 0xFF


class TestSalvage:
    def test_clean_files_have_no_defects(self):
        for version in (1, 2):
            buffer = io.BytesIO()
            write_capture_file(buffer, RECORDS, version=version)
            records, defects = salvage_capture_stream(io.BytesIO(buffer.getvalue()))
            assert records == RECORDS
            assert defects == []

    def test_truncated_tail_drops_partial_record(self):
        blob = _v2_blob()
        records, defects = salvage_capture_stream(io.BytesIO(blob[:-7]))
        assert records == RECORDS[:-2]  # 7 bytes = one whole + one partial record
        kinds = [d.kind for d in defects]
        assert "partial-record" in kinds and "count-mismatch" in kinds

    def test_single_bit_flip_in_payload_is_crc_mismatch(self):
        blob = bytearray(_v2_blob())
        blob[-3] ^= 0x10
        records, defects = salvage_capture_stream(io.BytesIO(bytes(blob)))
        assert len(records) == len(RECORDS)  # every record still delivered
        assert [d.kind for d in defects] == ["crc-mismatch"]

    def test_header_count_lie_reported_not_fatal(self):
        blob = bytearray(_v2_blob())
        blob[6:10] = (9999).to_bytes(4, "big")
        records, defects = salvage_capture_stream(io.BytesIO(bytes(blob)))
        assert records == RECORDS
        assert [d.kind for d in defects] == ["count-mismatch"]

    @pytest.mark.parametrize("version", [1, 2])
    def test_magic_bit_flip_resynchronises(self, version):
        buffer = io.BytesIO()
        write_capture_file(buffer, RECORDS, version=version)
        blob = bytearray(buffer.getvalue())
        blob[3] ^= 0x04  # "MPF1"/"MPF2" with one flipped bit
        result = salvage_capture(io.BytesIO(bytes(blob)))
        assert result.records == RECORDS
        assert result.meta.version == version
        assert [d.kind for d in result.defects] == ["bad-magic"]

    def test_unrecognisable_magic_gives_up_cleanly(self):
        records, defects = salvage_capture_stream(io.BytesIO(b"GIF89a" + b"\x00" * 40))
        assert records == []
        assert [d.kind for d in defects] == ["bad-magic"]

    def test_tiny_and_empty_files(self):
        for blob in (b"", b"MP"):
            records, defects = salvage_capture_stream(io.BytesIO(blob))
            assert records == []
            assert [d.kind for d in defects] == ["truncated-header"]

    def test_corrupt_header_fields_default_with_defects(self):
        blob = bytearray(_v2_blob())
        blob[10] = 77  # counter width way outside 1..24
        blob[11:15] = (0).to_bytes(4, "big")  # rate zero
        result = salvage_capture(io.BytesIO(bytes(blob)))
        assert result.meta.counter_width_bits == 24
        assert result.meta.counter_rate_hz == 1_000_000
        assert [d.kind for d in result.defects].count("bad-header-field") == 2
        # CRC still verifies: the payload itself is intact.
        assert all(d.kind != "crc-mismatch" for d in result.defects)

    def test_capture_load_salvage_attaches_defects(self, tmp_path):
        path = tmp_path / "damaged.mpf"
        path.write_bytes(_v2_blob()[:-2])
        with pytest.raises(ValueError):
            Capture.load(path, _names())
        capture = Capture.load(path, _names(), salvage=True)
        assert len(capture.records) == len(RECORDS) - 1
        assert any(d.kind == "partial-record" for d in capture.defects)

    def test_salvaged_metadata_survives(self, tmp_path):
        path = tmp_path / "damaged.mpf"
        blob = _v2_blob(
            overflowed=True, label="hot run", counter_width_bits=20,
            counter_rate_hz=2_000_000,
        )
        path.write_bytes(blob[:-2])
        capture = Capture.load(path, _names(), salvage=True)
        assert capture.overflowed is True
        assert capture.label == "hot run"
        assert capture.counter_width_bits == 20
        assert capture.counter_rate_hz == 2_000_000


class TestDoctorCli:
    def _write_damaged(self, tmp_path) -> pathlib.Path:
        path = tmp_path / "damaged.mpf"
        path.write_bytes(_v2_blob()[:-7])
        return path

    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "ok.mpf"
        write_capture_file(path, RECORDS)
        code, text = run_cli("capture", "doctor", str(path))
        assert code == 0
        assert "0 defect(s)" in text and "MPF2" in text

    def test_defects_exit_one_and_repair_roundtrips(self, tmp_path):
        damaged = self._write_damaged(tmp_path)
        repaired = tmp_path / "repaired.mpf"
        code, text = run_cli(
            "capture", "doctor", str(damaged), "-o", str(repaired)
        )
        assert code == 1
        assert "P211" in text and "P212" in text  # partial record + count lie
        assert "repaired MPF2 capture written" in text
        # The repaired file is clean: strict reader accepts it, doctor
        # gives it a clean bill.
        assert read_capture_file(repaired) == RECORDS[:-2]
        code, _ = run_cli("capture", "doctor", str(repaired))
        assert code == 0

    def test_unrecognisable_file_exits_two(self, tmp_path):
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"\x7fELF" + b"\x00" * 60)
        code, text = run_cli("capture", "doctor", str(junk))
        assert code == 2
        assert "P213" in text

    def test_missing_file_exits_two(self, tmp_path):
        code, text = run_cli("capture", "doctor", str(tmp_path / "absent.mpf"))
        assert code == 2
        assert "cannot read" in text

    def test_legacy_file_notes_metadata_default(self, tmp_path):
        path = tmp_path / "legacy.mpf"
        write_capture_file(path, RECORDS, version=1)
        code, text = run_cli("capture", "doctor", str(path))
        assert code == 0  # informational only: the file itself is healthy
        assert "P208" in text

    def test_plain_capture_command_still_works(self):
        """The doctor subcommand must not break the flag-only invocation."""
        code, text = run_cli("capture", "--workload", "network", "--packets", "4")
        assert code == 0
        assert "captured" in text


class TestAnalyzeSalvageCli:
    def _save_run(self, tmp_path) -> tuple[pathlib.Path, pathlib.Path]:
        capture_file = tmp_path / "run.mpf"
        names_file = tmp_path / "run.tags"
        code, _ = run_cli(
            "capture", "--workload", "network", "--packets", "4",
            "--save", str(capture_file), "--names", str(names_file),
        )
        assert code == 0
        return capture_file, names_file

    def test_damaged_capture_degrades_gracefully(self, tmp_path):
        capture_file, names_file = self._save_run(tmp_path)
        capture_file.write_bytes(capture_file.read_bytes()[:-3])
        # --strict refuses…
        code, text = run_cli(
            "analyze", str(capture_file), "--names", str(names_file), "--strict"
        )
        assert code == 1 and "refusing" in text
        # …--salvage analyses what survived and lists the damage.
        code, text = run_cli(
            "analyze", str(capture_file), "--names", str(names_file), "--salvage"
        )
        assert code == 0
        assert "Elapsed time" in text
        assert "salvage:" in text and "[partial-record]" in text

    def test_clean_capture_reports_no_defects(self, tmp_path):
        capture_file, names_file = self._save_run(tmp_path)
        code, text = run_cli(
            "analyze", str(capture_file), "--names", str(names_file), "--salvage"
        )
        assert code == 0
        assert "salvage: no defects found" in text

    def test_salvage_flag_conflicts(self, tmp_path):
        capture_file, names_file = self._save_run(tmp_path)
        for conflicting in ("--strict", "--stream"):
            with pytest.raises(SystemExit):
                main([
                    "analyze", str(capture_file), "--names", str(names_file),
                    "--salvage", conflicting,
                ], out=lambda _: None)


class TestFullReportFooter:
    def test_full_report_lists_defects(self, tmp_path):
        from repro.analysis.reports import full_report

        path = tmp_path / "damaged.mpf"
        path.write_bytes(_v2_blob(overflowed=True)[:-2])
        capture = Capture.load(path, _names(), salvage=True)
        text = full_report(capture, include_trace=False)
        assert "RAM overflowed" in text
        assert "salvaged" in text and "[partial-record]" in text


class TestLintIntegration:
    def test_lint_capture_file_salvage_mode(self, tmp_path):
        from repro.lint import lint_capture_file

        path = tmp_path / "damaged.mpf"
        path.write_bytes(_v2_blob()[:-7])
        strict = lint_capture_file(path, _names())
        assert strict.codes() == ("P200",)
        forgiving = lint_capture_file(path, _names(), salvage=True)
        assert "P200" in forgiving.codes()
        assert "P211" in forgiving.codes() and "P212" in forgiving.codes()

    def test_mpf1_file_gets_info_diagnostic(self, tmp_path):
        from repro.lint import lint_capture_file

        path = tmp_path / "legacy.mpf"
        write_capture_file(path, [RawRecord(tag=500, time=1)], version=1)
        report = lint_capture_file(path, _names(), ram_depth=None)
        assert "P208" in report.codes()
        assert report.ok  # info severity: never fails a CI gate


class TestGoldenCrc:
    def test_v2_golden_crcs_verify(self):
        """The checked-in MPF2 goldens carry self-consistent CRCs."""
        for name in ("figure3_network_v2.mpf", "figure5_forkexec_v2.mpf"):
            blob = (GOLDEN_DIR / name).read_bytes()
            header_size = int.from_bytes(blob[4:6], "big")
            crc = int.from_bytes(blob[16:20], "big")
            assert zlib.crc32(blob[header_size:]) == crc
