"""CLI surface of the coverage subsystem: ``repro coverage`` + lint flag.

The report and blind-spot walkthrough over the shipped seed corpus (the
two golden v2 captures) are golden files, asserted byte-for-byte — the
coverage cross is a pure function of the corpus and the kernel sources,
so any drift in extraction, classification or formatting lands here as
a reviewable diff.  Regenerate after an intentional change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_coverage_cli.py
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil

import pytest

from repro.__main__ import main

GOLDEN = pathlib.Path(__file__).parent / "golden"
NAMES = str(GOLDEN / "case_study.tags")
SEED_CAPTURES = ("figure3_network_v2.mpf", "figure5_forkexec_v2.mpf")


def run_cli(*argv: str) -> tuple[int, str]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, "\n".join(lines) + "\n"


def check_golden(name: str, text: str) -> None:
    path = GOLDEN / name
    if os.environ.get("REGEN_GOLDEN"):
        path.write_text(text)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden file {path} missing; run with REGEN_GOLDEN=1 to create it"
    )
    assert text == path.read_text(), (
        f"{name} drifted from the golden copy; if the change is "
        "intentional, regenerate with REGEN_GOLDEN=1 and review the diff"
    )


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    # The directory is always named 'corpus' so the report header (which
    # prints the root's basename only) is checkout-independent.
    root = tmp_path_factory.mktemp("covcli") / "corpus"
    root.mkdir()
    for name in SEED_CAPTURES:
        shutil.copy(GOLDEN / name, root / name)
    return str(root)


class TestCoverageReportCommand:
    def test_text_report_matches_golden(self, corpus):
        code, text = run_cli("coverage", "report", corpus, "--names", NAMES)
        assert code == 0
        check_golden("coverage_report.txt", text)

    def test_json_report_matches_golden(self, corpus):
        code, text = run_cli(
            "coverage", "report", corpus, "--names", NAMES, "--json"
        )
        assert code == 0
        check_golden("coverage_report.json", text)

    def test_json_counts_partition_the_universe(self, corpus):
        _, text = run_cli(
            "coverage", "report", corpus, "--names", NAMES, "--json"
        )
        document = json.loads(text)
        counts = document["counts"]
        assert counts["reachable"] == counts["covered"] + counts["blind_spots"]
        assert counts["instrumented"] == (
            counts["reachable"] + counts["unreachable"] + counts["unmapped"]
        )
        assert len(document["covered"]) == counts["covered"]
        assert len(document["blind_spots"]) == counts["blind_spots"]
        assert document["coverage_percent"] == round(
            100.0 * counts["covered"] / counts["reachable"], 1
        )

    def test_jobs_two_is_byte_identical(self, corpus):
        base = run_cli("coverage", "report", corpus, "--names", NAMES, "--json")
        jobs2 = run_cli(
            "coverage", "report", corpus, "--names", NAMES, "--json",
            "--jobs", "2",
        )
        assert base == jobs2

    def test_missing_root_exits_2(self, tmp_path):
        code, _ = run_cli(
            "coverage", "report", str(tmp_path / "nope"), "--names", NAMES
        )
        assert code == 2

    def test_corrupt_capture_exits_1(self, tmp_path):
        root = tmp_path / "corpus"
        root.mkdir()
        shutil.copy(GOLDEN / SEED_CAPTURES[0], root / SEED_CAPTURES[0])
        (root / "junk.mpf").write_bytes(b"garbage")
        code, text = run_cli("coverage", "report", str(root), "--names", NAMES)
        assert code == 1
        assert "P605" in text or "junk.mpf" in text


class TestBlindspotsCommand:
    def test_text_matches_golden(self, corpus):
        code, text = run_cli("coverage", "blindspots", corpus, "--names", NAMES)
        assert code == 0
        check_golden("coverage_blindspots.txt", text)

    def test_every_blind_spot_has_a_line(self, corpus):
        _, report = run_cli(
            "coverage", "report", corpus, "--names", NAMES, "--json"
        )
        _, walkthrough = run_cli(
            "coverage", "blindspots", corpus, "--names", NAMES
        )
        for spot in json.loads(report)["blind_spots"]:
            assert spot["name"] in walkthrough


class TestHuntCommand:
    def test_fixed_seed_hunt_improves_and_reproduces(self, corpus):
        argv = (
            "coverage", "hunt", corpus, "--names", NAMES,
            "--seed", "1", "--rounds", "1", "--candidates", "2", "--json",
        )
        code, text = run_cli(*argv)
        assert code == 0
        document = json.loads(text)
        assert document["tool"] == "profcov-hunt"
        assert document["covered"] > document["baseline"]
        assert document["gained"]
        assert document["steps"][0]["label"].startswith("hunt: ")
        code2, text2 = run_cli(*argv)
        assert (code, text) == (code2, text2)

    def test_bad_knobs_raise(self, corpus):
        with pytest.raises(SystemExit):
            run_cli(
                "coverage", "hunt", corpus, "--names", NAMES, "--rounds", "0"
            )


class TestLintCoverageFlag:
    def test_lint_coverage_corpus_reports_p6xx(self, corpus):
        code, text = run_cli(
            "lint", "--coverage-corpus", corpus, "--names", NAMES
        )
        assert code == 0  # blind spots and dead code are warnings
        assert "P601" in text
        assert "P602" in text

    def test_lint_coverage_corpus_needs_names(self, corpus):
        code, text = run_cli("lint", "--coverage-corpus", corpus)
        assert code == 2
        assert "--names" in text

    def test_lint_json_schema_carries_p6xx(self, corpus):
        code, text = run_cli(
            "lint", "--coverage-corpus", corpus, "--names", NAMES, "--json"
        )
        assert code == 0
        document = json.loads(text)
        codes = {d["code"] for d in document["diagnostics"]}
        assert {"P601", "P602"} <= codes
