"""Tests for the VM subsystem: pmap, maps, faults, kmem, fork/exec glue."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.vm.kmem import kmem_alloc, kmem_free
from repro.kernel.vm.pmap import (
    PROT_READ,
    PROT_RW,
    Pmap,
    pmap_copy,
    pmap_enter,
    pmap_protect,
    pmap_pte,
    pmap_remove,
)
from repro.kernel.vm.vm_fault import VmFaultError, vm_fault
from repro.kernel.vm.vm_glue import (
    ExecImage,
    vmspace_exec,
    vmspace_fork,
    vmspace_free,
)
from repro.kernel.vm.vm_map import Vmspace, VmMapError, vm_map_delete, vm_map_find
from repro.kernel.vm.vm_page import VmObject, vm_page_alloc, vm_page_free, vm_page_lookup

PAGE = 4096


def kernel() -> Kernel:
    return Kernel()


class TestPmap:
    def test_enter_and_resolve(self):
        k = kernel()
        pmap = Pmap("t")
        pmap_enter(k, pmap, 0x10000, frame=7, prot=PROT_RW)
        pte = pmap_pte(k, pmap, 0x10000)
        assert pte is not None and pte.frame == 7
        assert pmap_pte(k, pmap, 0x11000) is None

    def test_enter_replaces(self):
        k = kernel()
        pmap = Pmap("t")
        pmap_enter(k, pmap, 0x10000, frame=7, prot=PROT_RW)
        pmap_enter(k, pmap, 0x10000, frame=9, prot=PROT_READ)
        pte = pmap.raw_get(0x10000)
        assert pte.frame == 9 and pte.prot == PROT_READ
        assert len(pmap) == 1

    def test_remove_range(self):
        k = kernel()
        pmap = Pmap("t")
        for i in range(8):
            pmap_enter(k, pmap, 0x10000 + i * PAGE, frame=i, prot=PROT_RW)
        removed = pmap_remove(k, pmap, 0x10000 + 2 * PAGE, 0x10000 + 5 * PAGE)
        assert removed == 3
        assert len(pmap) == 5
        assert pmap.raw_get(0x10000 + 3 * PAGE) is None
        assert pmap.raw_get(0x10000) is not None

    def test_protect_changes_bits(self):
        k = kernel()
        pmap = Pmap("t")
        pmap_enter(k, pmap, 0x10000, frame=1, prot=PROT_RW)
        changed = pmap_protect(k, pmap, 0x10000, 0x10000 + PAGE, PROT_READ)
        assert changed == 1
        assert pmap.raw_get(0x10000).prot == PROT_READ

    def test_copy_duplicates_present_pages(self):
        k = kernel()
        src, dst = Pmap("src"), Pmap("dst")
        pmap_enter(k, src, 0x10000, frame=1, prot=PROT_RW)
        pmap_enter(k, src, 0x14000, frame=2, prot=PROT_READ)
        copied = pmap_copy(k, dst, src, 0x10000, 0x20000)
        assert copied == 2
        assert dst.raw_get(0x14000).frame == 2
        # Copies are independent PTEs.
        dst.raw_get(0x10000).prot = PROT_READ
        assert src.raw_get(0x10000).prot == PROT_RW

    def test_inverted_ranges_rejected(self):
        k = kernel()
        pmap = Pmap("t")
        with pytest.raises(ValueError):
            pmap_remove(k, pmap, 0x2000, 0x1000)
        with pytest.raises(ValueError):
            pmap_protect(k, pmap, 0x2000, 0x1000, PROT_READ)
        with pytest.raises(ValueError):
            pmap_copy(k, pmap, pmap, 0x2000, 0x1000)

    def test_pte_walk_cost_calibration(self):
        """Figure 5: pmap_pte ~3 us per call."""
        k = kernel()
        pmap = Pmap("t")
        before = k.machine.now_ns
        for _ in range(100):
            pmap_pte(k, pmap, 0x10000)
        per_call_us = (k.machine.now_ns - before) / 100 / 1_000
        assert 2 <= per_call_us <= 5


class TestVmPagesAndMaps:
    def test_page_alloc_and_lookup(self):
        k = kernel()
        obj = VmObject(kind="anon", size_pages=4)
        page = vm_page_alloc(k, obj, 0)
        assert vm_page_lookup(k, obj, 0) is page
        assert vm_page_lookup(k, obj, PAGE) is None

    def test_double_alloc_rejected(self):
        k = kernel()
        obj = VmObject()
        vm_page_alloc(k, obj, 0)
        with pytest.raises(ValueError):
            vm_page_alloc(k, obj, 0)

    def test_unaligned_offsets_rejected(self):
        k = kernel()
        obj = VmObject()
        with pytest.raises(ValueError):
            vm_page_alloc(k, obj, 5)
        with pytest.raises(ValueError):
            vm_page_lookup(k, obj, 5)

    def test_page_free_unlinks(self):
        k = kernel()
        obj = VmObject()
        page = vm_page_alloc(k, obj, 0)
        vm_page_free(k, page)
        assert vm_page_lookup(k, obj, 0) is None

    def test_shadow_chain_lookup(self):
        k = kernel()
        backing = VmObject(kind="file")
        shadow = VmObject(kind="shadow")
        shadow.shadow = backing
        page = vm_page_alloc(k, backing, 0)
        found = shadow.chain_lookup(0)
        assert found is not None and found[1] is page

    def test_map_overlap_rejected(self):
        k = kernel()
        vmspace = Vmspace("t")
        vm_map_find(k, vmspace, 0x10000, 4)
        with pytest.raises(VmMapError):
            vm_map_find(k, vmspace, 0x12000, 4)

    def test_map_delete_removes_mappings(self):
        k = kernel()
        vmspace = Vmspace("t")
        entry = vm_map_find(k, vmspace, 0x10000, 4)
        page = vm_page_alloc(k, entry.object, 0)
        pmap_enter(k, vmspace.pmap, 0x10000, page.frame, PROT_RW)
        removed = vm_map_delete(k, vmspace, 0x10000, 0x10000 + 4 * PAGE)
        assert removed == 1
        assert vmspace.map.entries == []
        assert len(vmspace.pmap) == 0


class TestVmFault:
    def test_zero_fill_fault(self):
        k = kernel()
        vmspace = Vmspace("t")
        vm_map_find(k, vmspace, 0x10000, 4)
        page = vm_fault(k, vmspace, 0x10000 + 123, write=True)
        assert vmspace.pmap.raw_get(0x10000) is not None
        assert page.object is not None
        assert k.stats["v_zfod"] == 1

    def test_fault_on_unmapped_raises(self):
        k = kernel()
        vmspace = Vmspace("t")
        with pytest.raises(VmFaultError):
            vm_fault(k, vmspace, 0xDEAD0000)

    def test_write_to_readonly_raises(self):
        k = kernel()
        vmspace = Vmspace("t")
        vm_map_find(k, vmspace, 0x10000, 1, prot=PROT_READ)
        with pytest.raises(VmFaultError):
            vm_fault(k, vmspace, 0x10000, write=True)

    def test_cow_fault_copies_page(self):
        k = kernel()
        vmspace = Vmspace("t")
        backing = VmObject(kind="file", size_pages=1)
        vm_page_alloc(k, backing, 0)
        shadow = VmObject(kind="shadow", size_pages=1)
        shadow.shadow = backing
        entry = vm_map_find(k, vmspace, 0x10000, 1, obj=shadow, prot=PROT_RW)
        entry.needs_copy = True
        page = vm_fault(k, vmspace, 0x10000, write=True)
        assert page.object is shadow  # copied up, not shared
        assert k.stats["v_cow_faults"] == 1
        assert backing.pages[0] is not page

    def test_read_fault_shares_backing_page(self):
        k = kernel()
        vmspace = Vmspace("t")
        backing = VmObject(kind="file", size_pages=1)
        shared = vm_page_alloc(k, backing, 0)
        shadow = VmObject(kind="shadow", size_pages=1)
        shadow.shadow = backing
        entry = vm_map_find(k, vmspace, 0x10000, 1, obj=shadow, prot=PROT_RW)
        entry.needs_copy = True
        page = vm_fault(k, vmspace, 0x10000, write=False)
        assert page is shared
        assert not shadow.pages  # nothing materialised

    def test_fault_cost_calibration(self):
        """Table 1: vm_fault ~410 us inclusive."""
        k = kernel()
        vmspace = Vmspace("t")
        vm_map_find(k, vmspace, 0x10000, 64)
        before = k.machine.now_ns
        vm_fault(k, vmspace, 0x10000, write=True)
        us = (k.machine.now_ns - before) / 1_000
        assert 250 <= us <= 600


class TestKmem:
    def test_alloc_maps_and_zeroes(self):
        k = kernel()
        va = kmem_alloc(k, 3 * PAGE)
        vmspace = k._kernel_vmspace
        assert vmspace.pmap.raw_get(va) is not None
        assert vmspace.pmap.raw_get(va + 2 * PAGE) is not None

    def test_alloc_cost_calibration(self):
        """Table 1: kmem_alloc ~800 us (multi-page allocation)."""
        k = kernel()
        before = k.machine.now_ns
        kmem_alloc(k, 4 * PAGE)
        us = (k.machine.now_ns - before) / 1_000
        assert 500 <= us <= 1_200

    def test_free_unmaps(self):
        k = kernel()
        va = kmem_alloc(k, 2 * PAGE)
        kmem_free(k, va, 2 * PAGE)
        assert k._kernel_vmspace.pmap.raw_get(va) is None

    def test_bad_sizes_rejected(self):
        k = kernel()
        with pytest.raises(ValueError):
            kmem_alloc(k, 0)
        with pytest.raises(ValueError):
            kmem_free(k, 0, 0)


class TestForkExecGlue:
    def exec_proc(self, k: Kernel, image: ExecImage):
        proc = k.sched.procs.new("testproc")
        vmspace_exec(k, proc, image)
        return proc

    def test_exec_builds_address_space(self):
        k = kernel()
        image = ExecImage(name="t", text_pages=10, data_pages=5)
        proc = self.exec_proc(k, image)
        vmspace = proc.vmspace
        assert len(vmspace.map.entries) == 3  # text, data, stack
        assert vmspace.resident_pages() > 0

    def test_fork_pmap_pte_storm(self):
        """Paper: "pmap_pte is called 1053 times when a fork is executed"."""
        k = kernel()
        parent = self.exec_proc(k, ExecImage(name="t"))
        child = k.sched.procs.new("child")
        before = k.stats.get("pmap_pte_calls", 0)
        counter = {"n": 0}
        # Count via the registry-free route: wrap the pmap dict access by
        # counting entries walked = mapped_pages of the image.
        vmspace_fork(k, parent, child)
        walked = ExecImage(name="t").mapped_pages
        assert 900 <= walked <= 1_200  # the ~1053 of the paper
        del before, counter

    def test_fork_shares_text_cows_data(self):
        k = kernel()
        parent = self.exec_proc(k, ExecImage(name="t", text_pages=4, data_pages=2))
        child = k.sched.procs.new("child")
        vmspace_fork(k, parent, child)
        child_entries = child.vmspace.map.entries
        parent_entries = parent.vmspace.map.entries
        # Text entry shares the object.
        assert child_entries[0].object is parent_entries[0].object
        # Writable entries are COW on both sides.
        assert child_entries[1].needs_copy and parent_entries[1].needs_copy
        assert child_entries[1].object is not parent_entries[1].object

    def test_fork_write_protects_parent(self):
        k = kernel()
        image = ExecImage(name="t", text_pages=2, data_pages=2)
        parent = self.exec_proc(k, image)
        child = k.sched.procs.new("child")
        data_va = image.data_start
        assert parent.vmspace.pmap.raw_get(data_va).prot & 0x2  # writable
        vmspace_fork(k, parent, child)
        assert not parent.vmspace.pmap.raw_get(data_va).prot & 0x2

    def test_fork_copies_page_tables(self):
        k = kernel()
        parent = self.exec_proc(k, ExecImage(name="t", text_pages=4))
        child = k.sched.procs.new("child")
        vmspace_fork(k, parent, child)
        assert len(child.vmspace.pmap) == len(parent.vmspace.pmap)

    def test_exec_replaces_space_with_big_remove(self):
        k = kernel()
        proc = self.exec_proc(k, ExecImage(name="a"))
        first_pmap = proc.vmspace.pmap
        assert len(first_pmap) > 0
        vmspace_exec(k, proc, ExecImage(name="b"))
        assert proc.vmspace.pmap is not first_pmap
        assert len(first_pmap) == 0  # torn down

    def test_vmspace_free(self):
        k = kernel()
        proc = self.exec_proc(k, ExecImage(name="t"))
        vmspace_free(k, proc)
        assert proc.vmspace is None

    def test_cow_after_fork_preserves_isolation(self):
        """Child writes land in the child's shadow, not the shared backing."""
        k = kernel()
        image = ExecImage(name="t", text_pages=2, data_pages=2)
        parent = self.exec_proc(k, image)
        child = k.sched.procs.new("child")
        vmspace_fork(k, parent, child)
        data_va = image.data_start
        page = vm_fault(k, child.vmspace, data_va, write=True)
        child_data_entry = child.vmspace.map.entries[1]
        assert page.object is child_data_entry.object
        # The parent's shadow object did not gain the page.
        parent_data_entry = parent.vmspace.map.entries[1]
        assert not parent_data_entry.object.pages
