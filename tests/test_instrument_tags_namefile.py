"""Tests for the tag scheme and the name/tag file machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.instrument.namefile import (
    NameFileError,
    NameTable,
    format_name_file,
    parse_line,
    parse_name_file,
)
from repro.instrument.tags import (
    TagEntry,
    TagError,
    TagKind,
    exit_tag,
    is_entry_tag,
)

PAPER_SAMPLE = """\
main/502
hardclock/510
gatherstats/512
softclock/514
timeout/516
untimeout/518
swtch/600!
MGET/1002=
"""


class TestTagEntry:
    def test_entry_exit_pairing(self):
        entry = TagEntry(name="myfunction", value=1386)
        assert entry.entry_value == 1386
        assert entry.exit_value == 1387
        assert entry.owned_values() == (1386, 1387)

    def test_odd_entry_tag_rejected(self):
        with pytest.raises(TagError):
            TagEntry(name="f", value=501)

    def test_inline_may_be_odd(self):
        entry = TagEntry(name="MGET", value=1003, inline=True)
        assert entry.owned_values() == (1003,)
        with pytest.raises(TagError):
            entry.exit_value

    def test_inline_cannot_be_context_switch(self):
        with pytest.raises(TagError):
            TagEntry(name="x", value=2, inline=True, context_switch=True)

    def test_kind_classification(self):
        entry = TagEntry(name="f", value=10)
        assert entry.kind_of(10) is TagKind.ENTRY
        assert entry.kind_of(11) is TagKind.EXIT
        with pytest.raises(TagError):
            entry.kind_of(12)

    def test_format_modifiers(self):
        assert TagEntry(name="swtch", value=600, context_switch=True).format() == "swtch/600!"
        assert TagEntry(name="MGET", value=1002, inline=True).format() == "MGET/1002="

    def test_name_validation(self):
        with pytest.raises(TagError):
            TagEntry(name="", value=0)
        with pytest.raises(TagError):
            TagEntry(name="a b", value=0)

    def test_helpers(self):
        assert is_entry_tag(0) and is_entry_tag(65534)
        assert not is_entry_tag(1) and not is_entry_tag(65535)
        assert exit_tag(500) == 501
        with pytest.raises(TagError):
            exit_tag(501)


class TestNameFileParsing:
    def test_paper_sample_parses(self):
        table = parse_name_file(PAPER_SAMPLE)
        assert len(table) == 8
        assert table.by_name("swtch").context_switch
        assert table.by_name("MGET").inline
        assert table.by_name("hardclock").value == 510

    def test_roundtrip_canonical(self):
        table = parse_name_file(PAPER_SAMPLE)
        assert parse_name_file(format_name_file(table)) is not None
        again = parse_name_file(format_name_file(table))
        assert {e.format() for e in again} == {e.format() for e in table}

    def test_blank_lines_and_comments_skipped(self):
        table = parse_name_file("# comment\n\nmain/502\n")
        assert len(table) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(NameFileError):
            parse_name_file("no-slash-here\n")
        with pytest.raises(NameFileError):
            parse_name_file("f/notanumber\n")

    def test_parse_line_none_for_blank(self):
        assert parse_line("   ") is None
        assert parse_line("# x") is None


class TestModifierEdgeCases:
    """The '!' and '=' modifier corners the paper leaves implicit."""

    def test_context_switch_on_exit_tag_rejected(self):
        """'!' marks a whole function; its tag value is still an entry
        tag and must be even — an odd value would alias some other
        function's exit trigger."""
        with pytest.raises(NameFileError):
            parse_line("swtch/601!")

    def test_inline_combined_with_context_switch_rejected(self):
        # Both modifier orders — the parser accepts either order
        # syntactically, so the rejection must come from the tag rules.
        with pytest.raises(NameFileError):
            parse_line("swtch/600!=")
        with pytest.raises(NameFileError):
            parse_line("swtch/600=!")

    def test_modifier_order_is_insignificant_when_legal(self):
        # A lone modifier parses the same wherever it sits.
        assert parse_line("swtch/600!").context_switch
        assert parse_line("MGET/1003=").inline

    def test_inline_exit_value_never_allocated(self):
        """An inline tag owns exactly one value; the next allocation may
        use the adjacent odd slot's successor but never the slot an
        entry/exit pair would need."""
        table = parse_name_file("MGET/1002=\n")
        entry = table.allocate("after_inline")
        assert entry.value == 1004
        assert 1003 not in {v for e in table for v in e.owned_values()}

    def test_reparse_auto_extended_file_keeps_tags(self, tmp_path):
        """The compiler's append-then-reread cycle: auto-extend a table,
        write it, re-parse it, extend again — previously assigned tags
        must survive both trips byte-identically."""
        path = tmp_path / "kernel.tags"
        table = parse_name_file(PAPER_SAMPLE)
        first = table.allocate("tcp_input")
        table.write(path)

        again = NameTable.read(path)
        assert again.by_name("tcp_input").value == first.value
        assert again.by_name("swtch").format() == "swtch/600!"
        assert again.by_name("MGET").format() == "MGET/1002="

        second = again.allocate("tcp_output")
        again.write(path)
        third = NameTable.read(path)
        assert third.by_name("tcp_input").value == first.value
        assert third.by_name("tcp_output").value == second.value
        assert second.value > first.value

    def test_reparse_preserves_inline_oddness(self, tmp_path):
        """An odd inline tag (hand-added assembler trigger) survives the
        write/read cycle without being 'corrected' to even."""
        path = tmp_path / "asm.tags"
        table = NameTable()
        table.add(TagEntry(name="locore_hook", value=777, inline=True))
        table.write(path)
        again = NameTable.read(path)
        entry = again.by_name("locore_hook")
        assert entry.value == 777 and entry.inline
        assert entry.owned_values() == (777,)


class TestNameTable:
    def test_allocate_is_stable_across_recompiles(self):
        """Paper: "Once generated, the same profile tags are used to allow
        recompilation without having different profile tags assigned"."""
        table = NameTable()
        table.seed(500)
        first = table.allocate("tcp_input")
        second = table.allocate("tcp_input")
        assert first is second

    def test_allocate_next_higher_even(self):
        table = parse_name_file(PAPER_SAMPLE)
        entry = table.allocate("new_function")
        assert entry.value == 1004  # next even above MGET/1002
        assert entry.value % 2 == 0

    def test_seed_sets_starting_value(self):
        table = NameTable()
        table.seed(500)
        assert table.allocate("first").value == 502

    def test_seed_requires_empty_table(self):
        table = parse_name_file(PAPER_SAMPLE)
        with pytest.raises(NameFileError):
            table.seed(100)

    def test_duplicate_name_conflict(self):
        table = NameTable()
        table.add(TagEntry(name="f", value=10))
        with pytest.raises(NameFileError):
            table.add(TagEntry(name="f", value=20))

    def test_identical_readd_is_noop(self):
        table = NameTable()
        entry = TagEntry(name="f", value=10)
        table.add(entry)
        table.add(TagEntry(name="f", value=10))
        assert len(table) == 1

    def test_value_collision_rejected(self):
        table = NameTable()
        table.add(TagEntry(name="f", value=10))
        with pytest.raises(NameFileError):
            table.add(TagEntry(name="g", value=11, inline=True))

    def test_decode_both_directions(self):
        table = parse_name_file(PAPER_SAMPLE)
        entry, kind = table.decode(510)
        assert entry.name == "hardclock" and kind is TagKind.ENTRY
        entry, kind = table.decode(511)
        assert entry.name == "hardclock" and kind is TagKind.EXIT
        assert table.decode(40_000) is None

    def test_concatenation(self):
        """Paper: multiple name/tag files may be concatenated."""
        kernel = parse_name_file("main/502\n")
        drivers = parse_name_file("weintr/700\n")
        kernel.extend(drivers)
        assert "weintr" in kernel and "main" in kernel

    def test_context_switch_entries(self):
        table = parse_name_file(PAPER_SAMPLE)
        assert [e.name for e in table.context_switch_entries()] == ["swtch"]

    def test_file_io_roundtrip(self, tmp_path):
        table = parse_name_file(PAPER_SAMPLE)
        path = tmp_path / "kernel.tags"
        table.write(path)
        again = NameTable.read(path)
        assert len(again) == len(table)

    def test_read_concatenates_files(self, tmp_path):
        (tmp_path / "a.tags").write_text("main/502\n")
        (tmp_path / "b.tags").write_text("weintr/700\n")
        table = NameTable.read(tmp_path / "a.tags", tmp_path / "b.tags")
        assert len(table) == 2

    @given(count=st.integers(min_value=1, max_value=200))
    def test_allocation_never_collides(self, count):
        table = NameTable()
        table.seed(500)
        values: set[int] = set()
        for i in range(count):
            entry = table.allocate(f"fn_{i}")
            owned = set(entry.owned_values())
            assert not (owned & values)
            values |= owned

    @given(
        names=st.lists(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll",)),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    def test_format_parse_roundtrip_property(self, names):
        table = NameTable()
        table.seed(500)
        for name in names:
            table.allocate(name)
        reparsed = parse_name_file(format_name_file(table))
        assert {e.format() for e in reparsed} == {e.format() for e in table}
