"""CLI surface of the profile database: ``repro db ingest/runs/query/diff/check``.

Everything here drives :func:`repro.__main__.main` in-process; exit
codes are the contract CI scripts branch on, so every path asserts
them.  The golden diff report pins the MPF1/MPF2 figure3 pair — two
files holding identical records — as the canonical all-unchanged,
exit-0 diff.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.__main__ import DB_FUNCTION_SORTS, main
from repro.db.query import FUNCTION_SORTS

from stream_helpers import build_regression_corpus

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_TAGS = str(GOLDEN_DIR / "case_study.tags")
# Content fingerprints of the frozen figure3 captures (stable: the
# goldens are never regenerated).
FIG3_V1 = "7b402bf026f3"
FIG3_V2 = "3b37790100d7"


def run_cli(*argv: str) -> tuple[int, str]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, "\n".join(lines)


def ingest_goldens(db: str) -> str:
    code, text = run_cli(
        "db", "ingest",
        str(GOLDEN_DIR / "figure3_network.mpf"),
        str(GOLDEN_DIR / "figure3_network_v2.mpf"),
        str(GOLDEN_DIR / "figure5_forkexec_v2.mpf"),
        "--db", db, "--names", GOLDEN_TAGS,
    )
    assert code == 0, text
    return text


@pytest.fixture
def regression_db(tmp_path) -> str:
    """A database holding 3 baseline + 3 seeded-slowdown runs."""
    corpus = tmp_path / "corpus"
    names = build_regression_corpus(
        corpus, label="before", runs=3, spin_us=100
    )
    build_regression_corpus(corpus, label="after", runs=3, spin_us=300)
    names_path = tmp_path / "regress.tags"
    names.write(names_path)
    db = str(tmp_path / "regress.db")
    code, text = run_cli(
        "db", "ingest", str(corpus), "--db", db,
        "--names", str(names_path), "--workload", "regress",
    )
    assert code == 0, text
    return db


class TestIngestCommand:
    def test_ingest_and_idempotence(self, tmp_path):
        db = str(tmp_path / "p.db")
        first = ingest_goldens(db)
        assert "3 added, 0 duplicate(s), 0 failed" in first
        second = ingest_goldens(db)
        assert "0 added, 3 duplicate(s), 0 failed" in second
        assert "3 run(s)" in second

    def test_nothing_found_exits_2(self, tmp_path):
        (tmp_path / "empty").mkdir()
        code, text = run_cli(
            "db", "ingest", str(tmp_path / "empty"),
            "--db", str(tmp_path / "p.db"), "--names", GOLDEN_TAGS,
        )
        assert code == 2
        assert "no capture files" in text

    def test_failed_capture_exits_1(self, tmp_path):
        bad = tmp_path / "bad.mpf"
        bad.write_bytes(b"\x00" * 64)
        code, text = run_cli(
            "db", "ingest", str(bad),
            "--db", str(tmp_path / "p.db"), "--names", GOLDEN_TAGS,
        )
        assert code == 1
        assert "1 failed" in text

    def test_salvage_ingests_corrupt_goldens(self, tmp_path):
        db = str(tmp_path / "p.db")
        code, text = run_cli(
            "db", "ingest",
            str(GOLDEN_DIR / "salvage_fuzz_bitflip.mpf.corrupt"),
            "--db", db, "--names", GOLDEN_TAGS, "--salvage",
        )
        assert code == 0
        assert "salvaged" in text


class TestRunsAndQueryCommands:
    def test_runs_catalog(self, tmp_path):
        db = str(tmp_path / "p.db")
        ingest_goldens(db)
        code, text = run_cli("db", "runs", "--db", db)
        assert code == 0
        assert "3 run(s)" in text
        assert FIG3_V1 in text and FIG3_V2 in text
        assert "mpf1" in text  # the legacy capture is flagged

    def test_runs_json_is_strict(self, tmp_path):
        db = str(tmp_path / "p.db")
        ingest_goldens(db)
        code, text = run_cli("db", "runs", "--db", db, "--json")
        document = json.loads(text)
        json.dumps(document, allow_nan=False)
        assert len(document["runs"]) == 3
        assert document["runs"] == sorted(
            document["runs"], key=lambda r: r["fingerprint"]
        )

    def test_query_filters_compose(self, tmp_path):
        db = str(tmp_path / "p.db")
        ingest_goldens(db)
        code, text = run_cli(
            "db", "query", "--db", db, "--workload", "network",
            "--function", "*cksum*", "--min-pct-net", "1",
        )
        assert code == 0
        assert "in_cksum" in text
        assert "forkexec" not in text

    def test_query_json_and_sort(self, tmp_path):
        db = str(tmp_path / "p.db")
        ingest_goldens(db)
        code, text = run_cli(
            "db", "query", "--db", db, "--sort", "calls",
            "--limit", "5", "--json",
        )
        rows = json.loads(text)["functions"]
        assert len(rows) == 5
        calls = [row["calls"] for row in rows]
        assert calls == sorted(calls, reverse=True)

    def test_sort_choices_mirror_library(self):
        # __main__ keeps a literal copy (importing repro.db at
        # parser-build time would shift kfunc tag assignment).
        assert set(DB_FUNCTION_SORTS) == set(FUNCTION_SORTS)


class TestDiffCommand:
    def test_identical_records_golden_report(self, tmp_path):
        """figure3 v1/v2 hold identical records: the exit-0 golden."""
        db = str(tmp_path / "p.db")
        ingest_goldens(db)
        code, text = run_cli("db", "diff", FIG3_V1, FIG3_V2, "--db", db)
        assert code == 0
        golden = (GOLDEN_DIR / "db_diff.txt").read_text()
        assert text + "\n" == golden

    def test_seeded_regression_exits_2(self, regression_db):
        code, text = run_cli(
            "db", "diff", "before", "after", "--db", regression_db
        )
        assert code == 2
        assert "REGRESSION" in text
        assert "spin" in text

    def test_benign_direction_exits_1(self, regression_db):
        code, text = run_cli(
            "db", "diff", "after", "before", "--db", regression_db
        )
        assert code == 1
        assert "REGRESSION" not in text

    def test_json_document(self, regression_db):
        code, text = run_cli(
            "db", "diff", "before", "after", "--db", regression_db, "--json"
        )
        assert code == 2
        document = json.loads(text)
        json.dumps(document, allow_nan=False)
        assert document["exit_code"] == 2
        assert document["functions"][0]["name"] == "spin"
        assert document["baseline"]["selector"] == "before"

    def test_baseline_label_sugar(self, regression_db):
        code, _ = run_cli(
            "db", "diff", "after", "--db", regression_db,
            "--baseline-label", "before",
        )
        assert code == 2

    def test_baseline_label_conflicts_with_two_positionals(self, regression_db):
        with pytest.raises(SystemExit):
            run_cli(
                "db", "diff", "a", "b", "--db", regression_db,
                "--baseline-label", "before",
            )

    def test_missing_candidate_rejected(self, regression_db):
        with pytest.raises(SystemExit):
            run_cli("db", "diff", "before", "--db", regression_db)

    def test_unknown_selector_rejected(self, regression_db):
        with pytest.raises(SystemExit, match="no run matches"):
            run_cli("db", "diff", "before", "nonesuch", "--db", regression_db)

    def test_threshold_knobs(self, regression_db):
        # An absurd absolute floor silences the seeded regression.
        code, text = run_cli(
            "db", "diff", "before", "after", "--db", regression_db,
            "--min-abs-us", "10000000",
        )
        assert code == 0
        assert "no movement beyond noise" in text


class TestCheckCommand:
    def test_clean_db(self, regression_db):
        code, text = run_cli("db", "check", "--db", regression_db)
        assert code == 0
        assert "clean" in text

    def test_json_report(self, regression_db):
        code, text = run_cli("db", "check", "--db", regression_db, "--json")
        document = json.loads(text)
        assert document["tool"] == "proflint"
        assert document["ok"]

    def test_drifted_db_exits_1(self, tmp_path, regression_db):
        import sqlite3

        raw = sqlite3.connect(regression_db)
        with raw:
            raw.execute("UPDATE schema_version SET version = 99")
        raw.close()
        code, text = run_cli("db", "check", "--db", regression_db)
        assert code == 1
        assert "P701" in text

    def test_lint_db_flag_is_the_same_pass(self, regression_db):
        code, text = run_cli("lint", "--db", regression_db)
        assert code == 0
        # The --db flag alone must not trigger the self-check pass.
        assert "case-study" not in text


class TestDeterminismAcrossIngestOrders:
    def test_diff_report_independent_of_ingest_order(self, tmp_path):
        corpus = tmp_path / "corpus"
        names = build_regression_corpus(
            corpus, label="before", runs=2, spin_us=100
        )
        build_regression_corpus(corpus, label="after", runs=2, spin_us=300)
        names_path = tmp_path / "r.tags"
        names.write(names_path)
        captures = sorted(str(p) for p in corpus.glob("*.mpf"))
        outputs = []
        for index, order in enumerate((captures, list(reversed(captures)))):
            db = str(tmp_path / f"o{index}.db")
            for capture in order:
                code, _ = run_cli(
                    "db", "ingest", capture, "--db", db,
                    "--names", str(names_path), "--workload", "regress",
                )
                assert code == 0
            code, text = run_cli(
                "db", "diff", "before", "after", "--db", db, "--json"
            )
            assert code == 2
            outputs.append(text)
        assert outputs[0] == outputs[1]
