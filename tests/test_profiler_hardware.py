"""Unit and property tests for the Profiler hardware model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.profiler.counter import MicrosecondCounter
from repro.profiler.eprom import EpromSocket, PiggyBackAdapter
from repro.profiler.hardware import ProfilerBoard
from repro.profiler.pal import ControlLogic
from repro.profiler.ram import RawRecord, TraceRam
from repro.sim.machine import Machine


class TestMicrosecondCounter:
    def test_one_mhz_24_bits(self):
        counter = MicrosecondCounter()
        assert counter.rate_hz == 1_000_000
        assert counter.width_bits == 24
        assert counter.mask == 0xFFFFFF

    def test_max_gap_about_16_seconds(self):
        """Paper: "a maximum time of 16 seconds between events"."""
        gap_s = MicrosecondCounter().max_gap_us / 1_000_000
        assert 16 <= gap_s <= 17

    def test_sample_truncates_to_width(self):
        counter = MicrosecondCounter()
        # 2**24 us + 5 us wraps to 5.
        t_ns = ((1 << 24) + 5) * 1_000
        assert counter.sample(t_ns) == 5

    def test_sample_is_microsecond_granular(self):
        counter = MicrosecondCounter()
        assert counter.sample(999) == 0
        assert counter.sample(1_000) == 1
        assert counter.sample(1_999) == 1

    def test_sample_non_integer_tick_period(self):
        """A rate whose period is not a whole ns keeps the exact mul/div."""
        counter = MicrosecondCounter(rate_hz=3_000_000)
        assert counter._ns_per_tick is None
        # 1 tick every 333.33 ns: at 1000 ns exactly 3 ticks have elapsed.
        assert counter.sample(1_000) == 3
        assert counter.sample(999) == 2
        assert counter.sample(7_777) == (7_777 * 3_000_000) // 1_000_000_000
        counter.phase_ticks = 0xFFFFFE
        assert counter.sample(1_000) == (3 + 0xFFFFFE) & counter.mask

    def test_interval_simple(self):
        counter = MicrosecondCounter()
        assert counter.interval_ticks(100, 250) == 150

    def test_interval_across_wrap(self):
        counter = MicrosecondCounter()
        assert counter.interval_ticks(0xFFFFFE, 3) == 5

    def test_interval_range_check(self):
        counter = MicrosecondCounter()
        with pytest.raises(ValueError):
            counter.interval_ticks(-1, 0)
        with pytest.raises(ValueError):
            counter.interval_ticks(0, 1 << 24)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            MicrosecondCounter(width_bits=0)
        with pytest.raises(ValueError):
            MicrosecondCounter(rate_hz=0)

    @given(
        t1=st.integers(min_value=0, max_value=10**15),
        gap_us=st.integers(min_value=0, max_value=(1 << 24) - 1),
    )
    def test_interval_recovers_any_sub_wrap_gap(self, t1, gap_us):
        """The defining invariant: any real gap below one wrap period is
        recovered exactly from two truncated snapshots."""
        counter = MicrosecondCounter()
        t1_ns = t1 * 1_000
        t2_ns = t1_ns + gap_us * 1_000
        s1, s2 = counter.sample(t1_ns), counter.sample(t2_ns)
        assert counter.interval_ticks(s1, s2) == gap_us


class TestTraceRam:
    def test_capacity_16384(self):
        assert TraceRam().depth == 16384

    def test_store_and_read_back(self):
        ram = TraceRam(depth=4)
        ram.store(tag=1386, time=123456)
        assert ram[0] == RawRecord(tag=1386, time=123456)
        assert len(ram) == 1 and ram.free_slots == 3

    def test_overflow_raises(self):
        ram = TraceRam(depth=1)
        ram.store(1, 1)
        assert ram.full
        with pytest.raises(OverflowError):
            ram.store(2, 2)

    def test_field_truncation(self):
        ram = TraceRam(depth=1)
        record = ram.store(tag=0x1FFFF, time=0x1FFFFFF)
        assert record.tag == 0xFFFF and record.time == 0xFFFFFF

    def test_remove_for_transfer(self):
        ram = TraceRam(depth=8)
        ram.store(1, 10)
        carrier = ram.remove_for_transfer()
        assert len(carrier) == 1 and len(ram) == 0
        assert carrier[0].tag == 1

    def test_record_validation(self):
        with pytest.raises(ValueError):
            RawRecord(tag=-1, time=0)
        with pytest.raises(ValueError):
            RawRecord(tag=0, time=1 << 24)


class TestControlLogic:
    def test_disarmed_suppresses(self):
        logic = ControlLogic()
        assert not logic.strobe(ram_full=False)
        assert logic.suppressed_strobes == 1

    def test_armed_stores(self):
        logic = ControlLogic()
        logic.arm()
        assert logic.strobe(ram_full=False)
        assert logic.stored_strobes == 1
        assert logic.active_led and not logic.overflow_led

    def test_overflow_latches_and_stops(self):
        logic = ControlLogic()
        logic.arm()
        assert not logic.strobe(ram_full=True)
        assert logic.overflow_led and not logic.active_led
        # Still suppressed even with room (latch holds until reset).
        assert not logic.strobe(ram_full=False)

    def test_reset_clears_latch(self):
        logic = ControlLogic()
        logic.arm()
        logic.strobe(ram_full=True)
        logic.reset()
        assert not logic.overflowed and not logic.armed


class TestProfilerBoard:
    def test_strobe_records_tag_and_time(self):
        board = ProfilerBoard()
        board.arm()
        record = board.eprom_strobe(offset=1386, now_ns=5_000_000)
        assert record == RawRecord(tag=1386, time=5_000)
        assert board.events_stored == 1

    def test_disarmed_board_records_nothing(self):
        board = ProfilerBoard()
        assert board.eprom_strobe(offset=1, now_ns=0) is None
        assert board.events_stored == 0

    def test_fills_then_overflow_led(self):
        board = ProfilerBoard(depth=3)
        board.arm()
        for i in range(3):
            assert board.eprom_strobe(offset=i, now_ns=i * 1000) is not None
        assert board.eprom_strobe(offset=99, now_ns=9000) is None
        assert board.overflow_led
        assert board.events_stored == 3

    def test_pull_rams_empties_board(self):
        board = ProfilerBoard(depth=4)
        board.arm()
        board.eprom_strobe(offset=7, now_ns=0)
        carrier = board.pull_rams()
        assert len(carrier) == 1
        assert board.events_stored == 0

    def test_bill_of_materials(self):
        """Chip count from the paper: 5 RAMs, 5 counters, 1 PAL, 1
        oscillator, 1 delay line."""
        assert sum(ProfilerBoard.CHIP_COUNT.values()) == 13


class TestEpromSocketAdapter:
    def test_adapter_taps_and_passes_through(self):
        machine = Machine()
        board = ProfilerBoard()
        board.arm()
        image = bytes(range(256))
        adapter = PiggyBackAdapter(board, EpromSocket(image=image))
        adapter.plug_into(machine)
        machine.clock.tick(3_000)
        value, _ = machine.bus.read8(adapter.base + 42)
        assert value == 42  # boot EPROM still readable through the adapter
        assert board.events_stored == 1
        assert board.ram[0].tag == 42
        assert board.ram[0].time == 3  # 3 us

    def test_empty_socket_floats_high(self):
        machine = Machine()
        adapter = PiggyBackAdapter(ProfilerBoard())
        adapter.plug_into(machine)
        value, _ = machine.bus.read8(adapter.base)
        assert value == 0xFF

    def test_double_plug_rejected(self):
        machine = Machine()
        adapter = PiggyBackAdapter(ProfilerBoard())
        adapter.plug_into(machine)
        with pytest.raises(RuntimeError):
            adapter.plug_into(machine)

    def test_unplug(self):
        machine = Machine()
        adapter = PiggyBackAdapter(ProfilerBoard())
        adapter.plug_into(machine)
        adapter.unplug()
        adapter.plug_into(machine)  # can re-plug after unplug

    def test_oversized_image_rejected(self):
        with pytest.raises(ValueError):
            EpromSocket(image=bytes(1 << 17))

    def test_socket_offset_bounds(self):
        socket = EpromSocket(image=b"\x01")
        with pytest.raises(ValueError):
            socket.read(1 << 16)
