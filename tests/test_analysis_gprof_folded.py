"""Tests for the gprof-style report and the folded-stack output."""

from __future__ import annotations

from repro.analysis.callstack import analyze_capture
from repro.analysis.folded import flame_ascii, hot_stacks, to_folded
from repro.analysis.gprof import SPONTANEOUS, gprof_report

from stream_helpers import stream


def sample_capture(simple_names):
    return stream(
        simple_names,
        (">", "main", 0),
        (">", "read", 10),
        (">", "bcopy", 20),
        ("<", "bcopy", 120),
        ("<", "read", 130),
        (">", "read", 140),
        (">", "bcopy", 150),
        ("<", "bcopy", 200),
        ("<", "read", 210),
        (">", "cksum", 220),
        ("<", "cksum", 320),
        ("<", "main", 340),
    )


class TestGprof:
    def test_arcs_exact(self, simple_names):
        report = gprof_report(analyze_capture(sample_capture(simple_names)))
        read = report.entry("read")
        assert read.calls == 2
        (caller_arc,) = read.callers
        assert caller_arc.caller == "main" and caller_arc.calls == 2
        (callee_arc,) = read.callees
        assert callee_arc.callee == "bcopy"
        assert callee_arc.inclusive_us == 100 + 50

    def test_spontaneous_root(self, simple_names):
        report = gprof_report(analyze_capture(sample_capture(simple_names)))
        main = report.entry("main")
        assert main.callers[0].caller == SPONTANEOUS

    def test_net_vs_inclusive(self, simple_names):
        report = gprof_report(analyze_capture(sample_capture(simple_names)))
        main = report.entry("main")
        assert main.inclusive_us == 340
        assert main.net_us == 340 - 120 - 70 - 100

    def test_ordering_and_format(self, simple_names):
        report = gprof_report(analyze_capture(sample_capture(simple_names)))
        ordered = [e.name for e in report.ordered()]
        assert ordered[0] == "bcopy"  # 150 us net
        text = report.format(limit=3)
        assert "bcopy" in text and "calls" in text and "%" in text

    def test_real_capture_arcs(self):
        from repro.system import build_case_study
        from repro.workloads.network_recv import network_receive

        system = build_case_study()
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=8)
        )
        report = gprof_report(system.analyze(capture))
        weget = report.entry("weget")
        assert {a.caller for a in weget.callers} == {"weread"}
        bcopy_callers = {a.caller for a in report.entry("bcopy").callers}
        assert "weget" in bcopy_callers


class TestFolded:
    def test_folded_lines(self, simple_names):
        folded = to_folded(analyze_capture(sample_capture(simple_names)))
        lines = dict(
            line.rsplit(" ", 1) for line in folded.splitlines()
        )
        assert lines["all;main;read;bcopy"] == "150"
        assert lines["all;main;read"] == "40"
        assert lines["all;main;cksum"] == "100"
        assert lines["all;main"] == "50"

    def test_folded_counts_conserve_busy_time(self, simple_names):
        analysis = analyze_capture(sample_capture(simple_names))
        folded = to_folded(analysis)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in folded.splitlines())
        attributed = sum(n.self_us for n in analysis.nodes())
        assert total == attributed

    def test_hot_stacks(self, simple_names):
        analysis = analyze_capture(sample_capture(simple_names))
        hottest = hot_stacks(analysis, n=2)
        assert hottest[0] == ("all;main;read;bcopy", 150)

    def test_flame_ascii_renders(self, simple_names):
        analysis = analyze_capture(sample_capture(simple_names))
        art = flame_ascii(analysis, width=60)
        assert "main" in art
        assert "read" in art or "re" in art
        # Deeper frames on higher lines: bcopy's row above main's.
        rows = art.splitlines()
        assert any("bcopy" in r or "bc" in r for r in rows[:-1])
        assert "main" in rows[-1]

    def test_flame_ascii_empty(self, simple_names):
        analysis = analyze_capture(stream(simple_names))
        assert flame_ascii(analysis) == "(empty capture)"
