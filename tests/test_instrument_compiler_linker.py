"""Tests for the instrumentation pass and the two-stage linker."""

from __future__ import annotations

import dataclasses

import pytest

from repro.instrument.compiler import (
    InstrumentingCompiler,
    TRIGGER_INSN_BYTES,
    TRIGGERS_PER_FUNCTION,
)
from repro.instrument.linker import (
    FIXED_PAGES_AFTER_KERNEL,
    KERNBASE,
    LinkError,
    ObjectModule,
    PAGE_SIZE,
    TwoStageLinker,
    layout_for,
    round_page,
)
from repro.instrument.namefile import NameTable


@dataclasses.dataclass
class FakeFunction:
    name: str
    module: str
    is_asm: bool = False
    context_switch: bool = False


KERNEL_FUNCS = [
    FakeFunction("main", "kern/init"),
    FakeFunction("hardclock", "kern/clock"),
    FakeFunction("swtch", "kern/sched", is_asm=True, context_switch=True),
    FakeFunction("tcp_input", "netinet/tcp"),
    FakeFunction("ipintr", "netinet/ip"),
    FakeFunction("weintr", "isa/if_we"),
    FakeFunction("bcopy", "i386/locore", is_asm=True),
]


class TestInstrumentingCompiler:
    def test_whole_kernel_pass(self):
        image = InstrumentingCompiler().compile(KERNEL_FUNCS)
        assert image.profiled_functions == 7
        assert image.c_functions == 5 and image.asm_functions == 2
        assert image.trigger_points == 14
        assert image.code_growth_bytes == 14 * TRIGGER_INSN_BYTES

    def test_context_switch_flag_propagates(self):
        image = InstrumentingCompiler().compile(KERNEL_FUNCS)
        assert image.names.by_name("swtch").context_switch

    def test_selective_module_compilation(self):
        """The paper's micro-profiling knob: only the modules of interest
        are compiled with profiling enabled."""
        image = InstrumentingCompiler().compile(KERNEL_FUNCS, modules=["netinet"])
        assert set(image.instrumented) == {"tcp_input", "ipintr"}

    def test_exact_module_match(self):
        image = InstrumentingCompiler().compile(KERNEL_FUNCS, modules=["kern/clock"])
        assert set(image.instrumented) == {"hardclock"}

    def test_predicate_selection(self):
        image = InstrumentingCompiler().compile(
            KERNEL_FUNCS, predicate=lambda f: f.is_asm
        )
        assert set(image.instrumented) == {"swtch", "bcopy"}

    def test_inline_points_allocated(self):
        image = InstrumentingCompiler().compile(
            KERNEL_FUNCS, modules=[], inline_points=["MGET"]
        )
        assert image.inline_points == 1
        assert image.names.by_name("MGET").inline
        assert image.trigger_points == 1

    def test_recompile_reuses_tags(self):
        compiler = InstrumentingCompiler()
        first = compiler.compile(KERNEL_FUNCS)
        second = compiler.compile(KERNEL_FUNCS)
        for name in first.instrumented:
            assert first.instrumented[name].value == second.instrumented[name].value

    def test_existing_name_table_respected(self):
        names = NameTable()
        names.seed(500)
        names.allocate("tcp_input")
        fixed = names.by_name("tcp_input").value
        image = InstrumentingCompiler(names=names).compile(KERNEL_FUNCS)
        assert image.instrumented["tcp_input"].value == fixed

    def test_install_sets_profile_map(self):
        image = InstrumentingCompiler().compile(
            KERNEL_FUNCS, inline_points=["MGET"]
        )

        class KernelStub:
            def set_profile_map(self, entry_tags, inline_tags):
                self.entry_tags = entry_tags
                self.inline_tags = inline_tags

        stub = KernelStub()
        image.install(stub)
        assert "tcp_input" in stub.entry_tags
        assert stub.inline_tags == {"MGET": image.names.by_name("MGET").value}
        assert "MGET" not in stub.entry_tags

    def test_asm_listing_matches_paper_shape(self):
        image = InstrumentingCompiler().compile(KERNEL_FUNCS)
        entry = image.instrumented["tcp_input"]
        listing = InstrumentingCompiler.asm_listing("tcp_input", entry)
        assert f"movb _ProfileBase+{entry.entry_value},%al" in listing
        assert f"movb _ProfileBase+{entry.exit_value},%cl" in listing

    def test_overhead_estimate_band(self):
        """Paper: "around 1 to 1.2% extra CPU cycles"."""
        compiler = InstrumentingCompiler()
        image = compiler.compile(KERNEL_FUNCS)
        overhead = compiler.overhead_estimate(
            image, trigger_ns=200, mean_function_ns=36_000
        )
        assert 0.005 <= overhead <= 0.02

    def test_overhead_estimate_validation(self):
        compiler = InstrumentingCompiler()
        image = compiler.compile(KERNEL_FUNCS)
        with pytest.raises(ValueError):
            compiler.overhead_estimate(image, trigger_ns=200, mean_function_ns=0)


class TestTwoStageLinker:
    MODULES = [
        ObjectModule(name="locore.o", text_bytes=30_000, data_bytes=2_000),
        ObjectModule(name="tcp_input.o", text_bytes=50_000, data_bytes=4_096),
        ObjectModule(name="vm_fault.o", text_bytes=20_123, data_bytes=777),
    ]

    def test_round_page(self):
        assert round_page(0) == 0
        assert round_page(1) == PAGE_SIZE
        assert round_page(PAGE_SIZE) == PAGE_SIZE
        with pytest.raises(ValueError):
            round_page(-1)

    def test_layout_matches_figure2(self):
        """Kernel at FE000000, ISA window after the rounded image plus the
        fixed stack/udot pages, EPROM keeps its offset within the hole."""
        layout = layout_for(kernel_size=123_456, eprom_phys=0xD0000)
        expected_isa_va = (
            KERNBASE + round_page(123_456) + FIXED_PAGES_AFTER_KERNEL * PAGE_SIZE
        )
        assert layout.isa_window_va == expected_isa_va
        assert layout.profile_base_va == expected_isa_va + (0xD0000 - 0xA0000)

    def test_profile_base_depends_on_kernel_size(self):
        """The snag the two-stage link exists to solve."""
        small = layout_for(kernel_size=100_000, eprom_phys=0xD0000)
        large = layout_for(kernel_size=900_000, eprom_phys=0xD0000)
        assert small.profile_base_va != large.profile_base_va

    def test_link_converges_in_two_passes(self):
        linked = TwoStageLinker(eprom_phys=0xD0000).link(self.MODULES)
        assert linked.passes == 2
        assert linked.profile_base == linked.layout.profile_base_va

    def test_empty_kernel_rejected(self):
        with pytest.raises(LinkError):
            TwoStageLinker(eprom_phys=0xD0000).link([])

    def test_duplicate_module_rejected(self):
        with pytest.raises(LinkError):
            TwoStageLinker(eprom_phys=0xD0000).link(
                [self.MODULES[0], self.MODULES[0]]
            )

    def test_eprom_outside_hole_rejected(self):
        with pytest.raises(LinkError):
            TwoStageLinker(eprom_phys=0x10000)
        with pytest.raises(LinkError):
            layout_for(kernel_size=1, eprom_phys=0x200000)

    def test_relocate_for_new_socket_relinks_only(self):
        """Paper: moving the Profiler to a different ROM socket requires
        editing only the assembler stub, then a relink."""
        linker = TwoStageLinker(eprom_phys=0xD0000)
        linked = linker.link(self.MODULES)
        moved = linker.relocate_for_new_socket(linked, new_eprom_phys=0xC8000)
        assert moved.modules == linked.modules
        assert moved.profile_base == linked.profile_base - 0x8000

    def test_negative_module_size_rejected(self):
        with pytest.raises(LinkError):
            ObjectModule(name="bad.o", text_bytes=-1, data_bytes=0)
