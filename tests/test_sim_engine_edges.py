"""InterruptQueue edge cases: tie-breaking, duplicates, masked planning.

Companion to ``test_sim_engine.py`` — these pin down the corners the
interrupt-heavy workloads lean on: FIFO tie-breaks among same-due-time
lines (also under masking), ``cancel_line`` with many queued entries for
one line, and the deliberate disagreement between ``next_due_ns`` (spl
aware) and ``next_any_due_ns`` (idle-loop planning) when the earliest
entry is masked.
"""

from __future__ import annotations

import random

from repro.sim.engine import InterruptLine, InterruptQueue, ReferenceInterruptQueue


def line(irq: int = 3, ipl: int = 2, name: str = "test") -> InterruptLine:
    return InterruptLine(irq=irq, name=name, ipl=ipl, handler=lambda: None)


class TestPopDueTieBreaking:
    def test_same_due_time_pops_in_posting_order(self):
        q = InterruptQueue()
        first = line(irq=3, name="first")
        second = line(irq=4, name="second")
        third = line(irq=5, name="third")
        q.post(second, due_ns=100)
        q.post(third, due_ns=100)
        q.post(first, due_ns=100)
        popped = [q.pop_due(100).line.name for _ in range(3)]
        assert popped == ["second", "third", "first"]

    def test_masking_skips_ahead_but_keeps_fifo_among_deliverable(self):
        q = InterruptQueue()
        masked = line(irq=3, ipl=2, name="masked")
        high_a = line(irq=4, ipl=6, name="high-a")
        high_b = line(irq=5, ipl=6, name="high-b")
        q.post(masked, due_ns=100)  # earliest posted, but masked at ipl 3
        q.post(high_a, due_ns=100)
        q.post(high_b, due_ns=100)
        assert q.pop_due(100, current_ipl=3).line.name == "high-a"
        assert q.pop_due(100, current_ipl=3).line.name == "high-b"
        # The masked entry stayed queued (the PIC holds the line asserted)...
        assert q.pop_due(100, current_ipl=3) is None
        assert len(q) == 1
        # ... and delivers the moment spl drops.
        assert q.pop_due(100, current_ipl=0).line.name == "masked"

    def test_earlier_due_masked_entry_does_not_block_later_deliverable(self):
        q = InterruptQueue()
        masked = line(irq=3, ipl=2, name="masked")
        deliverable = line(irq=4, ipl=6, name="deliverable")
        q.post(masked, due_ns=50)
        q.post(deliverable, due_ns=90)
        popped = q.pop_due(100, current_ipl=3)
        assert popped.line.name == "deliverable"
        assert q.pending_for(masked) == 1

    def test_nothing_due_yet_returns_none_without_removal(self):
        q = InterruptQueue()
        q.post(line(), due_ns=200)
        assert q.pop_due(199) is None
        assert len(q) == 1


class TestCancelLineDuplicates:
    def test_cancel_drops_every_entry_for_the_line(self):
        q = InterruptQueue()
        noisy = line(irq=3, name="noisy")
        other = line(irq=4, name="other")
        for due in (10, 20, 30, 40):
            q.post(noisy, due_ns=due)
        q.post(other, due_ns=25)
        assert q.cancel_line(noisy) == 4
        assert q.pending_for(noisy) == 0
        assert len(q) == 1
        # The heap is still well-formed after the rebuild.
        assert q.pop_due(100).line.name == "other"

    def test_cancel_matches_identity_not_equality(self):
        q = InterruptQueue()
        handler = lambda: None  # noqa: E731 - shared on purpose
        twin_a = InterruptLine(irq=3, name="twin", ipl=2, handler=handler)
        twin_b = InterruptLine(irq=3, name="twin", ipl=2, handler=handler)
        q.post(twin_a, due_ns=10)
        q.post(twin_b, due_ns=20)
        assert q.cancel_line(twin_a) == 1
        assert q.pending_for(twin_b) == 1

    def test_cancel_absent_line_is_a_noop(self):
        q = InterruptQueue()
        q.post(line(irq=3), due_ns=10)
        assert q.cancel_line(line(irq=9, name="never-posted")) == 0
        assert len(q) == 1

    def test_posted_counter_survives_cancellation(self):
        q = InterruptQueue()
        noisy = line()
        for due in (10, 20, 30):
            q.post(noisy, due_ns=due)
        q.cancel_line(noisy)
        assert q.posted == 3


class TestNextDueDisagreement:
    def test_masked_earliest_splits_the_two_views(self):
        q = InterruptQueue()
        q.post(line(irq=3, ipl=2, name="masked-early"), due_ns=100)
        q.post(line(irq=4, ipl=6, name="deliverable-late"), due_ns=500)
        # spl-aware view skips the masked entry; planning view must not —
        # the idle loop has to wake at 100 even though delivery waits.
        assert q.next_due_ns(current_ipl=3) == 500
        assert q.next_any_due_ns() == 100

    def test_everything_masked_leaves_only_the_planning_view(self):
        q = InterruptQueue()
        q.post(line(ipl=2), due_ns=100)
        assert q.next_due_ns(current_ipl=7) is None
        assert q.next_any_due_ns() == 100

    def test_views_agree_when_nothing_is_masked(self):
        q = InterruptQueue()
        q.post(line(ipl=6), due_ns=300)
        q.post(line(ipl=6), due_ns=100)
        assert q.next_due_ns(current_ipl=0) == 100
        assert q.next_any_due_ns() == 100

    def test_empty_queue_returns_none_from_both_views(self):
        q = InterruptQueue()
        assert q.next_due_ns() is None
        assert q.next_any_due_ns() is None


class TestCrossBucketTieBreaking:
    """Same-due entries at *different* ipl levels live in different
    per-level heaps; ``seq`` is globally monotone, so FIFO order must
    survive the bucket split."""

    def test_same_due_across_ipl_buckets_pops_in_posting_order(self):
        q = InterruptQueue()
        mid = line(irq=3, ipl=4, name="mid")
        high = line(irq=4, ipl=6, name="high")
        higher = line(irq=5, ipl=5, name="higher")
        q.post(high, due_ns=100)
        q.post(higher, due_ns=100)
        q.post(mid, due_ns=100)
        popped = [q.pop_due(100).line.name for _ in range(3)]
        assert popped == ["high", "higher", "mid"]

    def test_seq_order_survives_interleaved_levels(self):
        q = InterruptQueue()
        lines = [line(irq=i, ipl=2 + (i % 3), name=f"l{i}") for i in range(9)]
        for ln in lines:
            q.post(ln, due_ns=50)
        popped = [q.pop_due(50).line.name for _ in range(9)]
        assert popped == [f"l{i}" for i in range(9)]


class TestHorizonCache:
    """The cached per-ipl horizon must stay coherent across every
    mutation path (post / pop_due / cancel_line)."""

    def test_post_lowers_a_cached_horizon_in_place(self):
        q = InterruptQueue()
        q.post(line(ipl=6), due_ns=500)
        assert q.next_due_ns(0) == 500  # warm the cache
        q.post(line(ipl=6), due_ns=100)
        assert q.next_due_ns(0) == 100

    def test_post_of_masked_entry_leaves_masked_view_untouched(self):
        q = InterruptQueue()
        q.post(line(ipl=6), due_ns=500)
        assert q.next_due_ns(3) == 500  # warm the cache at ipl 3
        q.post(line(ipl=2), due_ns=50)  # masked at ipl 3
        assert q.next_due_ns(3) == 500
        assert q.next_due_ns(0) == 50

    def test_post_refreshes_a_cached_none(self):
        q = InterruptQueue()
        assert q.next_due_ns(0) is None  # cache the empty answer
        q.post(line(ipl=6), due_ns=100)
        assert q.next_due_ns(0) == 100

    def test_pop_invalidates_the_horizon_it_defined(self):
        q = InterruptQueue()
        q.post(line(ipl=6), due_ns=100)
        q.post(line(ipl=6), due_ns=300)
        assert q.next_due_ns(0) == 100
        q.pop_due(100)
        assert q.next_due_ns(0) == 300

    def test_pop_keeps_cheaper_horizons_valid(self):
        q = InterruptQueue()
        q.post(line(irq=3, ipl=6, name="early"), due_ns=100)
        q.post(line(irq=4, ipl=4, name="late"), due_ns=400)
        assert q.next_due_ns(0) == 100
        assert q.next_due_ns(5) == 100
        popped = q.pop_due(100, current_ipl=0)
        assert popped.line.name == "early"
        assert q.next_due_ns(0) == 400
        assert q.next_due_ns(5) is None

    def test_cancel_line_refreshes_the_horizon(self):
        q = InterruptQueue()
        noisy = line(irq=3, ipl=6, name="noisy")
        q.post(noisy, due_ns=100)
        q.post(line(irq=9, ipl=6, name="other"), due_ns=400)
        assert q.next_due_ns(0) == 100
        q.cancel_line(noisy)
        assert q.next_due_ns(0) == 400

    def test_randomized_schedule_matches_reference_queue(self):
        """Drive both implementations through an identical randomized
        post/pop/query/cancel schedule; every observable must agree."""
        rng = random.Random(0xC0FFEE)
        fast = InterruptQueue()
        ref = ReferenceInterruptQueue()
        lines = [line(irq=i, ipl=rng.randint(1, 6), name=f"irq{i}") for i in range(8)]
        now = 0
        for _ in range(2000):
            op = rng.random()
            if op < 0.45:
                ln = rng.choice(lines)
                due = now + rng.randint(0, 5_000)
                fast.post(ln, due)
                ref.post(ln, due)
            elif op < 0.75:
                now += rng.randint(0, 2_000)
                ipl = rng.randint(0, 6)
                got = fast.pop_due(now, ipl)
                want = ref.pop_due(now, ipl)
                assert (got is None) == (want is None)
                if got is not None:
                    assert (got.due_ns, got.seq, got.line.name) == (
                        want.due_ns,
                        want.seq,
                        want.line.name,
                    )
            elif op < 0.95:
                ipl = rng.randint(0, 6)
                assert fast.next_due_ns(ipl) == ref.next_due_ns(ipl)
                assert fast.next_any_due_ns() == ref.next_any_due_ns()
            else:
                ln = rng.choice(lines)
                assert fast.cancel_line(ln) == ref.cancel_line(ln)
            assert len(fast) == len(ref)
