"""Tests for user-level profiling (§User Code Profiling)."""

from __future__ import annotations

import pytest

from repro.analysis.summary import summarize
from repro.analysis.trace import format_trace
from repro.kernel.userprof import (
    PROF_USER_VA,
    UserImage,
    UserProfError,
    prof_mmap,
    profdev_open,
    umark,
    user_call,
)
from repro.kernel.vm.vm_glue import ExecImage
from repro.system import build_case_study
from repro.workloads.network_recv import network_receive
from repro.kernel.syscalls import syscall


def make_user_proc(system, functions=("u_main", "u_parse", "u_reply")):
    """Spawn a process with an address space and the window mapped."""
    kernel = system.kernel
    image = UserImage.compile("snmpd", system.names, functions, ("U_MARK",))
    state = {}

    def setup(k, proc):
        from repro.kernel.vm.vm_glue import vmspace_exec

        vmspace_exec(k, proc, ExecImage(name="snmpd", text_pages=10, data_pages=4))
        fd = profdev_open(k, proc)
        va = prof_mmap(k, proc, fd)
        state["va"] = va
        state["proc"] = proc
        return proc

    return image, setup, state


class TestDriverStub:
    def test_open_and_mmap(self):
        system = build_case_study()
        image, setup, state = make_user_proc(system)

        def body2(k, proc):
            setup(k, proc)
            # Check the mapping before exit tears the space down.
            state["pte"] = proc.vmspace.pmap.raw_get(PROF_USER_VA)
            yield from syscall(k, proc, "exit", 0)

        system.kernel.sched.spawn("snmpd", body2)
        system.kernel.sched.run(until_ns=60_000_000_000)
        assert state["va"] == PROF_USER_VA
        assert state["pte"] is not None

    def test_mmap_requires_profdev_fd(self):
        system = build_case_study()
        failures = []

        def body(k, proc):
            from repro.kernel.vm.vm_glue import vmspace_exec

            vmspace_exec(k, proc, ExecImage(name="t", text_pages=4))
            fd = yield from syscall(k, proc, "open", "/notdev", True)
            try:
                prof_mmap(k, proc, fd)
            except UserProfError as exc:
                failures.append(str(exc))
            yield from syscall(k, proc, "exit", 0)

        system.kernel.sched.spawn("bad", body)
        system.kernel.sched.run(until_ns=60_000_000_000)
        assert failures

    def test_trigger_without_mmap_fails(self):
        system = build_case_study()
        image = UserImage.compile("p", system.names, ("lonely_fn",))
        failures = []

        def body(k, proc):
            try:
                for _ in user_call(k, proc, image, "lonely_fn", 10):
                    pass
            except UserProfError as exc:
                failures.append(str(exc))
            yield from syscall(k, proc, "exit", 0)

        system.kernel.sched.spawn("bad2", body)
        system.kernel.sched.run(until_ns=60_000_000_000)
        assert failures and "prof_mmap" in failures[0]


def run_user_workload(system):
    """The SNMP-daemon-style workload: 5 rounds of call/parse/mark/reply."""
    image, setup, state = make_user_proc(system)

    def body(k, proc):
        setup(k, proc)
        for _ in range(5):
            yield from user_call(k, proc, image, "u_main", 2_000)
            yield from user_call(k, proc, image, "u_parse", 4_000)
            umark(k, proc, image, "U_MARK")
            yield from user_call(k, proc, image, "u_reply", 1_000)
        yield from syscall(k, proc, "exit", 0)

    system.kernel.sched.spawn("snmpd", body)
    system.kernel.sched.run(until_ns=120_000_000_000)
    return image


class TestUserCapture:
    def run_user_workload(self, system):
        return run_user_workload(system)

    def test_user_functions_in_summary(self):
        system = build_case_study()
        capture = system.profile(lambda: self.run_user_workload(system))
        summary = summarize(system.analyze(capture))
        parse = summary.get("u_parse")
        assert parse is not None and parse.calls == 5
        assert 3_900 <= parse.avg_us <= 4_600
        assert summary.get("u_main").calls == 5

    def test_inline_marks_recorded(self):
        system = build_case_study()
        capture = system.profile(lambda: self.run_user_workload(system))
        text = format_trace(system.analyze(capture))
        assert "== U_MARK" in text
        assert "-> u_parse" in text

    def test_mixed_kernel_and_user_profiling(self):
        """The paper: "a mixture of kernel and user level profiling" —
        kernel frames (the clock tick) appear nested inside user frames."""
        system = build_case_study()
        capture = system.profile(lambda: self.run_user_workload(system))
        analysis = system.analyze(capture)
        u_parents = set()
        for node in analysis.nodes():
            if node.name == "ISAINTR":
                parent_names = [
                    p.name
                    for p in analysis.nodes()
                    if node in p.children
                ]
                u_parents.update(parent_names)
        # At least one clock interrupt preempted a user function.
        assert u_parents & {"u_main", "u_parse", "u_reply"}

    def test_user_tags_share_the_name_file(self):
        """One concatenated name file covers kernel and user tags."""
        system = build_case_study()
        image = UserImage.compile("p2", system.names, ("extra_user_fn",))
        entry = image.functions["extra_user_fn"]
        assert system.names.decode(entry.entry_value)[0].name == "extra_user_fn"
        # No collision with any kernel tag.
        assert system.names.by_name("tcp_input").value != entry.value


class TestEngineParity:
    def test_user_capture_identical_across_engines(self):
        """User-mode triggers take the same fast path as kernel ones, so
        the optimized engine must capture the reference stream byte for
        byte — including the `_user_trigger` slow path the reference
        engine (fastpath_enabled=False) exercises."""
        results = {}
        for engine in ("optimized", "reference"):
            system = build_case_study(engine=engine)
            capture = system.profile(lambda: run_user_workload(system))
            results[engine] = (
                b"".join(record.pack() for record in capture.records),
                system.kernel.machine.clock.now_ns,
                system.kernel.stats["user_triggers"],
            )
        assert results["optimized"] == results["reference"]
        # 5 rounds x (3 enter/leave pairs + 1 mark) = 35 user strobes.
        assert results["optimized"][2] == 35


class TestConcurrentProfiling:
    def test_two_user_processes_profiled_together(self):
        """"or profiling several user processes at the same time"."""
        system = build_case_study()
        kernel = system.kernel
        image_a = UserImage.compile("proc-a", system.names, ("a_work",))
        image_b = UserImage.compile("proc-b", system.names, ("b_work",))

        def make_body(image, fn):
            def body(k, proc):
                from repro.kernel.vm.vm_glue import vmspace_exec
                from repro.kernel.sched import tsleep

                vmspace_exec(k, proc, ExecImage(name=image.name, text_pages=4))
                fd = profdev_open(k, proc)
                prof_mmap(k, proc, fd)
                for _ in range(3):
                    for _ in user_call(k, proc, image, fn, 150):
                        pass
                    yield from tsleep(k, ("pace", proc.pid), timo=1)
                yield from syscall(k, proc, "exit", 0)

            return body

        def workload():
            kernel.sched.spawn("proc-a", make_body(image_a, "a_work"))
            kernel.sched.spawn("proc-b", make_body(image_b, "b_work"))
            kernel.sched.run(until_ns=120_000_000_000)

        capture = system.profile(workload)
        summary = summarize(system.analyze(capture))
        assert summary.get("a_work").calls == 3
        assert summary.get("b_work").calls == 3
