"""Tests for capture serialisation and the EPROM-readback path."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, strategies as st

from repro.profiler.ram import RawRecord, TraceRam
from repro.profiler.upload import (
    MAGIC,
    CaptureFormatError,
    EpromReadback,
    decode_record_columns,
    dump_records,
    iter_capture_columns,
    iter_capture_file,
    iter_record_columns,
    iter_record_stream,
    load_records,
    read_capture,
    read_capture_file,
    read_capture_meta,
    write_capture_file,
    write_capture_stream,
)

records_strategy = st.lists(
    st.builds(
        RawRecord,
        tag=st.integers(min_value=0, max_value=0xFFFF),
        time=st.integers(min_value=0, max_value=0xFFFFFF),
    ),
    max_size=200,
)


class TestRecordStream:
    def test_pack_layout(self):
        blob = RawRecord(tag=0x1234, time=0x56789A).pack()
        assert blob == bytes([0x12, 0x34, 0x56, 0x78, 0x9A])

    def test_unpack_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            RawRecord.unpack(b"\x00" * 4)

    def test_load_rejects_ragged_stream(self):
        with pytest.raises(ValueError):
            load_records(b"\x00" * 7)

    @given(records=records_strategy)
    def test_roundtrip(self, records):
        assert load_records(dump_records(records)) == records


class TestCaptureFile:
    def test_file_roundtrip(self, tmp_path):
        records = [RawRecord(tag=i, time=i * 10) for i in range(5)]
        path = tmp_path / "run1.mpf"
        assert write_capture_file(path, records) == 5
        assert read_capture_file(path) == records

    def test_stream_roundtrip(self):
        records = [RawRecord(tag=1, time=2)]
        buffer = io.BytesIO()
        write_capture_file(buffer, records)
        buffer.seek(0)
        assert read_capture_file(buffer) == records

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError):
            read_capture_file(path)

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "short.mpf"
        records = [RawRecord(tag=1, time=2)]
        blob = b"MPF1" + (9).to_bytes(4, "big") + dump_records(records)
        path.write_bytes(blob)
        with pytest.raises(ValueError):
            read_capture_file(path)


class TestEpromReadback:
    def test_bank_multiplexed_readback(self):
        ram = TraceRam(depth=16)
        stored = [RawRecord(tag=100 + i, time=1000 * i) for i in range(5)]
        for record in stored:
            ram.store(record.tag, record.time)
        assert EpromReadback(ram).read_all() == stored

    def test_unwritten_slots_float_high(self):
        ram = TraceRam(depth=4)
        ram.store(1, 1)
        readback = EpromReadback(ram)
        readback.select_bank(0)
        assert readback.read(3) == 0xFF

    def test_bank_bounds(self):
        readback = EpromReadback(TraceRam(depth=4))
        with pytest.raises(ValueError):
            readback.select_bank(5)
        with pytest.raises(ValueError):
            readback.read(4)

    @given(records=records_strategy.filter(lambda r: len(r) <= 64))
    def test_readback_equals_direct_dump(self, records):
        ram = TraceRam(depth=64)
        for record in records:
            ram.store(record.tag, record.time)
        assert EpromReadback(ram).read_all() == list(ram.records())


class TestStreamingCaptureIO:
    """The chunked readers/writers behind ``analyze --stream``."""

    def _file(self, records):
        buffer = io.BytesIO()
        write_capture_file(buffer, records)
        buffer.seek(0)
        return buffer

    def test_iter_record_stream_matches_batch_loader(self):
        records = [RawRecord(tag=i, time=i * 7) for i in range(100)]
        stream = io.BytesIO(dump_records(records))
        assert list(iter_record_stream(stream, chunk_records=7)) == records

    def test_iter_record_stream_partial_record_spanning_chunks(self):
        """A record split across two read() chunks must reassemble."""
        records = [RawRecord(tag=i, time=i) for i in range(10)]
        blob = dump_records(records)

        class DribbleStream(io.BytesIO):
            def read(self, n=-1):
                return super().read(min(n, 3) if n and n > 0 else n)

        assert list(iter_record_stream(DribbleStream(blob))) == records

    def test_iter_record_stream_rejects_trailing_partial(self):
        blob = dump_records([RawRecord(tag=1, time=2)]) + b"\x00\x00"
        with pytest.raises(ValueError, match="partial"):
            list(iter_record_stream(io.BytesIO(blob)))

    def test_iter_record_stream_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            next(iter_record_stream(io.BytesIO(b""), chunk_records=0))

    def test_iter_capture_file_roundtrip(self, tmp_path):
        records = [RawRecord(tag=i, time=i * 3) for i in range(50)]
        path = tmp_path / "run.mpf"
        write_capture_file(path, records)
        assert list(iter_capture_file(path, chunk_records=8)) == records

    def test_iter_capture_file_accepts_open_stream(self):
        records = [RawRecord(tag=5, time=9)]
        assert list(iter_capture_file(self._file(records))) == records

    def test_iter_capture_file_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            list(iter_capture_file(io.BytesIO(b"NOPE\x00\x00\x00\x00")))

    def test_iter_capture_file_count_mismatch_raises_at_end(self):
        records = [RawRecord(tag=1, time=2), RawRecord(tag=3, time=4)]
        blob = MAGIC + (9).to_bytes(4, "big") + dump_records(records)
        iterator = iter_capture_file(io.BytesIO(blob))
        assert next(iterator) == records[0]
        assert next(iterator) == records[1]
        with pytest.raises(ValueError, match="claims 9"):
            next(iterator)

    def test_iter_capture_file_count_check_can_be_disabled(self):
        records = [RawRecord(tag=1, time=2)]
        blob = MAGIC + (9).to_bytes(4, "big") + dump_records(records)
        assert list(iter_capture_file(io.BytesIO(blob), verify_count=False)) == records

    def test_write_capture_stream_from_generator(self, tmp_path):
        path = tmp_path / "gen.mpf"
        count = write_capture_stream(
            path, (RawRecord(tag=i, time=i) for i in range(100))
        )
        assert count == 100
        # Batch reader accepts it: the backpatched count is correct.
        assert read_capture_file(path) == [
            RawRecord(tag=i, time=i) for i in range(100)
        ]

    def test_write_capture_stream_empty_iterator(self):
        buffer = io.BytesIO()
        assert write_capture_stream(buffer, iter(())) == 0
        buffer.seek(0)
        assert read_capture_file(buffer) == []

    @given(records=records_strategy)
    def test_streaming_and_batch_formats_are_identical(self, records):
        streamed = io.BytesIO()
        write_capture_stream(streamed, iter(records))
        batch = io.BytesIO()
        write_capture_file(batch, records)
        assert streamed.getvalue() == batch.getvalue()


class _NonSeekable(io.RawIOBase):
    """A pipe-like stream: readable, never seekable."""

    def __init__(self, blob: bytes) -> None:
        self._inner = io.BytesIO(blob)

    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return False

    def readinto(self, buffer):
        blob = self._inner.read(len(buffer))
        buffer[: len(blob)] = blob
        return len(blob)


class TestCaptureFormatErrorContract:
    """The one documented exception type for capture *content* faults.

    Every reader — batch, per-record streaming, columnar streaming,
    header probe — raises :class:`CaptureFormatError` (a
    :class:`ValueError` subclass, so old callers keep working) with the
    same message for the same fault, seekable or not.
    """

    def _v2_file(self, records) -> bytes:
        buffer = io.BytesIO()
        write_capture_stream(buffer, records, version=2)
        return buffer.getvalue()

    def test_is_a_value_error(self):
        assert issubclass(CaptureFormatError, ValueError)

    def test_short_magic_reported_as_truncation_not_bad_magic(self):
        """A 2-byte file is a *truncated* file, not a magic mismatch."""
        for reader in (
            lambda s: read_capture_meta(s),
            lambda s: read_capture(s),
            lambda s: list(iter_capture_file(s)),
            lambda s: list(iter_capture_columns(s)),
        ):
            with pytest.raises(CaptureFormatError) as excinfo:
                reader(io.BytesIO(b"MP"))
            message = str(excinfo.value)
            assert "truncated" in message
            assert "2 byte(s)" in message
            assert "magic)" not in message  # not the bad-magic wording

    def test_readers_agree_on_fault_messages(self):
        """Same fault, same message, whichever reader hits it."""
        records = [RawRecord(tag=1, time=2), RawRecord(tag=3, time=4)]
        good = self._v2_file(records)
        faults = {
            "bad-magic": b"NOPE" + good[4:],
            "count-lie": good[:6] + (9).to_bytes(4, "big") + good[10:],
            "crc-flip": good[:-1] + bytes([good[-1] ^ 0x01]),
        }
        for fault, blob in faults.items():
            messages = set()
            for reader in (
                lambda s: read_capture(s),
                lambda s: list(iter_capture_file(s)),
                lambda s: list(iter_capture_columns(s)),
            ):
                with pytest.raises(CaptureFormatError) as excinfo:
                    reader(io.BytesIO(blob))
                messages.add(str(excinfo.value))
            assert len(messages) == 1, f"{fault}: {messages}"

    def test_trailing_garbage_raises_everywhere(self):
        """Trailing partial-record bytes: one exception type from every
        reader.  The streaming readers agree on wording; the batch reader
        sees the whole ragged payload at once and says so."""
        blob = self._v2_file([RawRecord(tag=1, time=2)]) + b"\x00\x00"
        streaming_messages = set()
        for reader in (
            lambda s: list(iter_capture_file(s)),
            lambda s: list(iter_capture_columns(s)),
        ):
            with pytest.raises(CaptureFormatError, match="partial") as excinfo:
                reader(io.BytesIO(blob))
            streaming_messages.add(str(excinfo.value))
        assert len(streaming_messages) == 1
        with pytest.raises(CaptureFormatError, match="not a multiple"):
            read_capture(io.BytesIO(blob))

    def test_ragged_stream_raises_in_both_record_decoders(self):
        blob = b"\x00" * 7
        with pytest.raises(CaptureFormatError, match="not a multiple"):
            load_records(blob)
        with pytest.raises(CaptureFormatError, match="not a multiple"):
            decode_record_columns(blob)

    def test_iter_record_columns_rejects_trailing_partial(self):
        blob = dump_records([RawRecord(tag=1, time=2)]) + b"\x00\x00"
        with pytest.raises(CaptureFormatError, match="partial"):
            list(iter_record_columns(io.BytesIO(blob)))

    def test_meta_probe_restores_seekable_position(self):
        records = [RawRecord(tag=i, time=i * 3) for i in range(7)]
        stream = io.BytesIO(self._v2_file(records))
        meta = read_capture_meta(stream)
        assert meta.count == 7
        assert stream.tell() == 0
        # The probe composes with a subsequent full read.
        assert list(iter_capture_file(stream)) == records

    def test_meta_probe_leaves_non_seekable_at_first_record(self):
        records = [RawRecord(tag=i, time=i * 3) for i in range(7)]
        stream = io.BufferedReader(_NonSeekable(self._v2_file(records)))
        meta = read_capture_meta(stream)
        assert meta.count == 7
        # Documented contract: a pipe is positioned at the record bytes.
        assert list(iter_record_stream(stream)) == records

    def test_meta_probe_same_error_seekable_or_not(self):
        damaged = b"MP"
        with pytest.raises(CaptureFormatError) as seekable_err:
            read_capture_meta(io.BytesIO(damaged))
        with pytest.raises(CaptureFormatError) as pipe_err:
            read_capture_meta(io.BufferedReader(_NonSeekable(damaged)))
        assert str(seekable_err.value) == str(pipe_err.value)
