"""Seeded corruption fuzzing: the salvaging decoder, columnar vs reference.

A deterministic generator mutates a known-good capture — truncation,
bit flips, count-field lies, magic damage, and stacked combinations —
and every mutant goes through :func:`salvage_capture_bytes` twice, once
per decode engine.  The engines must recover the same records, report
the same :class:`CaptureDefect` list and the same metadata, for every
mutant: salvage is exactly the path where the two implementations are
most likely to drift, because it runs on *damaged* byte streams.

Three generated mutants are frozen in ``tests/golden/`` together with
their expected salvage results (``salvage_fuzz_expected.json``), so the
salvager's recovery behaviour is pinned release over release, not just
self-consistent.  Regenerate with::

    PYTHONPATH=src python tests/test_salvage_fuzz.py --freeze

``REPRO_FUZZ_CASES`` tunes the number of random seeds (default 60).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import random
import sys
from pathlib import Path

import pytest

from repro.profiler.ram import RawRecord
from repro.profiler.upload import (
    dump_records,
    salvage_capture_bytes,
    write_capture_stream,
)

GOLDEN = Path(__file__).parent / "golden"
EXPECTED_PATH = GOLDEN / "salvage_fuzz_expected.json"
FUZZ_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "60"))

#: Byte offsets of the record-count field, per header version.
COUNT_OFFSET = {1: 4, 2: 6}

MUTATIONS = ("truncate", "bit-flip", "count-lie", "magic", "stack")


def base_capture(version: int = 2) -> bytes:
    """A fixed 120-record capture: the substrate every mutant starts from."""
    records = [
        RawRecord(tag=500 + (i % 7) * 2 + (i % 2), time=(i * 4093) & 0xFFFFFF)
        for i in range(120)
    ]
    buffer = io.BytesIO()
    write_capture_stream(
        buffer,
        records,
        version=version,
        label="fuzz substrate" if version == 2 else "",
    )
    return buffer.getvalue()


def mutate(blob: bytes, kind: str, rng: random.Random) -> bytes:
    """Apply one named corruption to *blob*, deterministically from *rng*."""
    data = bytearray(blob)
    if kind == "truncate":
        # Anywhere from "lost the tail record" to "lost almost everything".
        del data[rng.randrange(1, len(data)) :]
    elif kind == "bit-flip":
        for _ in range(rng.randint(1, 4)):
            data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
    elif kind == "count-lie":
        version = 2 if blob.startswith(b"MPF2") else 1
        offset = COUNT_OFFSET[version]
        lie = rng.choice([0, 1, 9, 119, 121, 10_000])
        data[offset : offset + 4] = lie.to_bytes(4, "big")
    elif kind == "magic":
        data[rng.randrange(4)] ^= 0xFF
    elif kind == "stack":
        for sub in rng.sample(("truncate", "bit-flip", "count-lie"), 2):
            data = bytearray(mutate(bytes(data), sub, rng))
    else:  # pragma: no cover - generator bug
        raise ValueError(f"unknown mutation {kind!r}")
    return bytes(data)


def salvage_fingerprint(blob: bytes, decode: str) -> dict:
    """Everything observable about one salvage run, JSON-serialisable."""
    result = salvage_capture_bytes(blob, decode=decode)
    return {
        "records": len(result.records),
        "records_sha256": hashlib.sha256(
            dump_records(result.records)
        ).hexdigest(),
        "defects": [
            {"kind": d.kind, "message": d.message, "offset": d.offset}
            for d in result.defects
        ],
        "meta": {
            "version": result.meta.version,
            "count": result.meta.count,
            "counter_width_bits": result.meta.counter_width_bits,
            "counter_rate_hz": result.meta.counter_rate_hz,
            "overflowed": result.meta.overflowed,
            "label": result.meta.label,
            "crc32": result.meta.crc32,
        },
    }


def _case_stream():
    """(label, mutant-bytes) for every seeded fuzz case."""
    for seed in range(FUZZ_CASES):
        rng = random.Random(seed)
        version = rng.choice((1, 2))
        kind = rng.choice(MUTATIONS)
        mutant = mutate(base_capture(version), kind, rng)
        yield f"seed={seed} v{version} {kind}", mutant


class TestSalvageEngineParity:
    @pytest.mark.parametrize("kind", MUTATIONS)
    def test_engines_agree_per_mutation(self, kind):
        """Dense sweep of one mutation family across many seeds."""
        for seed in range(FUZZ_CASES):
            rng = random.Random((seed << 3) | MUTATIONS.index(kind))
            version = rng.choice((1, 2))
            mutant = mutate(base_capture(version), kind, rng)
            reference = salvage_fingerprint(mutant, "reference")
            columnar = salvage_fingerprint(mutant, "columnar")
            assert columnar == reference, f"{kind} seed {seed} v{version}"

    def test_engines_agree_mixed_corpus(self):
        for label, mutant in _case_stream():
            reference = salvage_fingerprint(mutant, "reference")
            columnar = salvage_fingerprint(mutant, "columnar")
            assert columnar == reference, label

    def test_pristine_capture_salvages_clean(self):
        for version in (1, 2):
            blob = base_capture(version)
            for decode in ("reference", "columnar"):
                result = salvage_capture_bytes(blob, decode=decode)
                assert result.defects == []
                assert len(result.records) == 120


# -- frozen corpus -----------------------------------------------------------

#: The three frozen mutants: (file stem, mutation kind, seed).
FROZEN_CASES = (
    ("salvage_fuzz_truncate", "truncate", 7),
    ("salvage_fuzz_bitflip", "bit-flip", 3),
    ("salvage_fuzz_countlie", "count-lie", 11),
)


def _frozen_mutant(kind: str, seed: int) -> bytes:
    return mutate(base_capture(2), kind, random.Random(seed))


class TestFrozenCorpus:
    def test_frozen_files_match_generator(self):
        """The files on disk are exactly what the seeded generator emits —
        nobody edited the corpus by hand."""
        for stem, kind, seed in FROZEN_CASES:
            frozen = (GOLDEN / f"{stem}.mpf.corrupt").read_bytes()
            assert frozen == _frozen_mutant(kind, seed), stem

    @pytest.mark.parametrize("stem,kind,seed", FROZEN_CASES)
    def test_salvage_matches_expected(self, stem, kind, seed):
        expected = json.loads(EXPECTED_PATH.read_text())[stem]
        mutant = (GOLDEN / f"{stem}.mpf.corrupt").read_bytes()
        for decode in ("reference", "columnar"):
            assert salvage_fingerprint(mutant, decode) == expected, decode


def freeze_golden() -> None:
    """Regenerate the frozen corpus and its expected-results file."""
    expected = {}
    for stem, kind, seed in FROZEN_CASES:
        mutant = _frozen_mutant(kind, seed)
        (GOLDEN / f"{stem}.mpf.corrupt").write_bytes(mutant)
        expected[stem] = salvage_fingerprint(mutant, "reference")
    EXPECTED_PATH.write_text(json.dumps(expected, indent=2) + "\n")
    print(f"froze {len(expected)} cases into {GOLDEN}")


if __name__ == "__main__":
    if "--freeze" in sys.argv:
        freeze_golden()
    else:
        print(__doc__)
