"""Tests for the self-telemetry subsystem and its exporters.

Covers the metric/span primitives, the disabled no-op fast path, the
three exporters (JSON lines, Prometheus text exposition, Chrome
``trace_event``), the capture-to-Chrome renderer over golden captures
(including the ``swtch()`` per-process split and the interrupt track),
the ``--progress`` heartbeat, the P4xx telemetry lint family and the
CLI surface — notably that analyze report bytes are identical with
telemetry on and off.
"""

from __future__ import annotations

import io
import json
import pathlib
import re
import threading

import pytest

from repro.__main__ import main
from repro.analysis.callstack import analyze_capture
from repro.analysis.pipeline import analyze_sharded
from repro.instrument.namefile import NameTable
from repro.lint import lint_telemetry
from repro.profiler.capture import Capture
from repro.telemetry import (
    NOOP_SPAN,
    TELEMETRY,
    MetricError,
    MetricRegistry,
    NoopSpan,
    ProgressReporter,
    SpanTracer,
    Telemetry,
    prometheus_name,
)
from repro.telemetry.export import (
    capture_to_chrome_trace,
    infer_format,
    render_telemetry,
    telemetry_to_chrome_trace,
    to_jsonl,
    to_prometheus,
    write_telemetry,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _clean_singleton():
    """The module singleton is global state: leave it as we found it."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


def make_telemetry() -> Telemetry:
    return Telemetry("test").enable()


def golden_analysis(name: str = "figure5_forkexec_v2.mpf"):
    names = NameTable.read(GOLDEN_DIR / "case_study.tags")
    capture = Capture.load(GOLDEN_DIR / name, names)
    return analyze_capture(capture)


# -- primitives ---------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates(self):
        t = make_telemetry()
        t.count("a.b", 2)
        t.count("a.b", 3)
        (sample,) = t.samples()
        assert (sample.name, sample.kind, sample.value) == ("a.b", "counter", 5)

    def test_counter_rejects_negative(self):
        t = make_telemetry()
        with pytest.raises(MetricError):
            t.counter("a").inc(-1)

    def test_counter_labels_vend_children(self):
        t = make_telemetry()
        t.count("defects", kind="crc")
        t.count("defects", kind="crc")
        t.count("defects", kind="magic")
        by_labels = {s.labels: s.value for s in t.samples()}
        assert by_labels[(("kind", "crc"),)] == 2
        assert by_labels[(("kind", "magic"),)] == 1

    def test_gauge_set_and_max(self):
        t = make_telemetry()
        t.set_gauge("g", 4)
        t.set_gauge("g", 2)
        assert t.samples()[0].value == 2
        t.max_gauge("g", 9)
        t.max_gauge("g", 5)
        assert t.samples()[0].value == 9

    def test_histogram_samples_and_suffixes(self):
        t = make_telemetry()
        t.histogram("h", buckets=(1.0, 10.0))
        t.observe("h", 0.5)
        t.observe("h", 5.0)
        t.observe("h", 500.0)
        names = {s.name for s in t.samples()}
        assert names == {"h.bucket", "h.sum", "h.count"}
        buckets = {
            dict(s.labels)["le"]: s.value
            for s in t.samples()
            if s.name == "h.bucket"
        }
        assert buckets["1.0"] == 1
        assert buckets["10.0"] == 2  # cumulative
        assert buckets["+Inf"] == 3

    def test_registry_idempotent_and_kind_checked(self):
        registry = MetricRegistry("r")
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_prometheus_name_sanitises(self):
        assert prometheus_name("upload.records.decoded") == "upload_records_decoded"
        assert re.fullmatch(
            r"[a-zA-Z_:][a-zA-Z0-9_:]*", prometheus_name("9weird-name.metric")
        )


class TestSpans:
    def test_nesting_depth_and_attrs(self):
        t = make_telemetry()
        with t.span("outer", shards=2):
            with t.span("inner"):
                pass
        records = {r.name: r for r in t.spans()}
        assert records["outer"].depth == 0
        assert records["inner"].depth == 1
        assert dict(records["outer"].attrs)["shards"] == 2

    def test_span_set_and_close_idempotent(self):
        t = make_telemetry()
        span = t.span("s")
        span.set(records=7)
        span.close()
        span.close()
        (record,) = t.spans()
        assert dict(record.attrs)["records"] == 7

    def test_out_of_order_close_unwinds_the_stack(self):
        t = make_telemetry()
        outer = t.span("outer")
        t.span("inner")
        outer.close()  # pops inner off the stack, abandoned
        assert [r.name for r in t.spans()] == ["outer"]
        assert t.tracer.open_span_names() == ()
        assert t.tracer.open_count == 1  # inner never finished -> P401

    def test_traced_decorator(self):
        t = make_telemetry()

        @t.traced("work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert [r.name for r in t.spans()] == ["work"]

    def test_buffer_bound_drops_and_counts(self):
        t = Telemetry("small").enable()
        t.tracer.max_spans = 3
        for i in range(5):
            t.span(f"s{i}").close()
        assert len(t.spans()) == 3
        assert t.tracer.dropped == 2

    def test_worker_thread_spans_carry_thread_name(self):
        t = make_telemetry()

        def work():
            with t.span("in-thread"):
                pass

        thread = threading.Thread(target=work, name="shard-worker")
        thread.start()
        thread.join()
        (record,) = t.spans()
        assert record.thread_name == "shard-worker"


class TestDisabledNoop:
    def test_recorders_leave_no_state(self):
        t = Telemetry("off")
        t.count("c")
        t.set_gauge("g", 1)
        t.max_gauge("g2", 1)
        t.observe("h", 1)
        with t.span("s", k="v"):
            pass
        assert t.samples() == []
        assert list(t.spans()) == []

    def test_disabled_span_is_the_shared_noop(self):
        t = Telemetry("off")
        span = t.span("anything")
        assert span is NOOP_SPAN
        assert isinstance(span, NoopSpan)
        span.set(x=1)  # all no-ops, never raises
        span.close()

    def test_instrument_creation_allowed_while_disabled(self):
        t = Telemetry("off")
        counter = t.counter("pre.created")
        t.enable()
        counter.inc()
        assert t.samples()[0].value == 1

    def test_singleton_starts_disabled(self):
        assert TELEMETRY.enabled is False


# -- exporters ----------------------------------------------------------------


class TestJsonlExport:
    def test_every_line_parses_and_meta_leads(self):
        t = make_telemetry()
        t.count("c", 2)
        with t.span("s"):
            pass
        lines = to_jsonl(t).splitlines()
        docs = [json.loads(line) for line in lines]
        assert docs[0]["type"] == "meta"
        assert docs[0]["metrics"] == 1
        assert docs[0]["spans"] == 1
        kinds = [d["type"] for d in docs]
        assert kinds == ["meta", "metric", "span"]
        span_doc = docs[-1]
        assert span_doc["name"] == "s"
        assert span_doc["duration_ns"] >= 0


PROM_HELP = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$")
PROM_TYPE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (-?[0-9.eE+-]+|[+-]Inf|NaN)$"
)


def check_prometheus_text(text: str) -> None:
    """A line-format checker for the Prometheus text exposition format."""
    assert text.endswith("\n")
    typed: set[str] = set()
    for line in text.splitlines():
        if line.startswith("# HELP"):
            assert PROM_HELP.match(line), line
        elif line.startswith("# TYPE"):
            match = PROM_TYPE.match(line)
            assert match, line
            assert match.group(1) not in typed, f"duplicate TYPE for {line}"
            typed.add(match.group(1))
        else:
            match = PROM_SAMPLE.match(line)
            assert match, line
            base = re.sub(r"_(bucket|sum|count)$", "", match.group(1))
            assert match.group(1) in typed or base in typed, (
                f"sample {line!r} has no preceding TYPE header"
            )


class TestPrometheusExport:
    def test_exposition_format_is_valid(self):
        t = make_telemetry()
        t.count("upload.records.decoded", 1484)
        t.count("upload.salvage.defects", kind='we"ird\\kind')
        t.set_gauge("profiler.ram.occupancy", 0.75)
        t.histogram("chunk.bytes", buckets=(1024.0,))
        t.observe("chunk.bytes", 40960)
        check_prometheus_text(to_prometheus(t))

    def test_type_header_once_per_histogram_family(self):
        t = make_telemetry()
        t.histogram("h", buckets=(1.0,))
        t.observe("h", 2.0)
        text = to_prometheus(t)
        assert text.count("# TYPE h histogram") == 1
        assert "h_bucket" in text and "h_sum" in text and "h_count" in text

    def test_label_escaping(self):
        t = make_telemetry()
        t.count("c", kind='a"b\\c\nd')
        text = to_prometheus(t)
        assert r'kind="a\"b\\c\nd"' in text
        check_prometheus_text(text)


def check_chrome_events(events: list[dict]) -> None:
    """Schema + stack-discipline (nesting containment) per (pid, tid)."""
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event), event
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
        elif event["ph"] == "i":
            assert "ts" in event and event["s"] in ("t", "p", "g")
    by_track: dict[tuple, list[dict]] = {}
    for event in events:
        if event["ph"] == "X":
            by_track.setdefault((event["pid"], event["tid"]), []).append(event)
    for track in by_track.values():
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[tuple[float, float]] = []
        for event in track:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack:
                assert start >= stack[-1][0] and end <= stack[-1][1], (
                    f"event {event['name']} at {start}..{end} overlaps "
                    f"enclosing frame {stack[-1]} without nesting"
                )
            stack.append((start, end))


class TestChromeTelemetryExport:
    def test_schema_and_thread_metadata(self):
        t = make_telemetry()
        t.count("c", 3)
        with t.span("outer"):
            with t.span("inner"):
                pass
        doc = telemetry_to_chrome_trace(t)
        events = doc["traceEvents"]
        check_chrome_events(events)
        assert any(
            e["ph"] == "M" and e["name"] == "process_name" for e in events
        )
        assert any(e["ph"] == "M" and e["name"] == "thread_name" for e in events)
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert set(names) == {"outer", "inner"}
        assert doc["otherData"]["metrics"]["c"] == 3


class TestCaptureChromeExport:
    def test_swtch_split_makes_per_process_tracks(self):
        analysis = golden_analysis("figure5_forkexec_v2.mpf")
        assert len(analysis.procs) >= 2  # the golden forkexec run switches
        doc = capture_to_chrome_trace(analysis)
        events = doc["traceEvents"]
        check_chrome_events(events)
        track_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for proc in analysis.procs:
            assert proc in track_names.values()
        assert track_names[0] == "interrupts"
        # Kernel frames land on their own process's track.
        frame_pids = {
            e["pid"] for e in events if e["ph"] == "X" and e["cat"] == "kernel"
        }
        assert len(frame_pids) >= 2

    def test_interrupt_frames_route_to_dedicated_track(self):
        analysis = golden_analysis("figure3_network_v2.mpf")
        doc = capture_to_chrome_trace(analysis)
        interrupt_events = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "interrupt"
        ]
        assert interrupt_events
        assert {e["pid"] for e in interrupt_events} == {0}
        # The whole subtree moves, not just the dispatcher frame.
        assert {e["name"] for e in interrupt_events} > {"ISAINTR"}

    def test_custom_interrupt_names(self):
        analysis = golden_analysis("figure3_network_v2.mpf")
        doc = capture_to_chrome_trace(analysis, interrupt_names=frozenset())
        assert not any(
            e.get("cat") == "interrupt" for e in doc["traceEvents"]
        )
        assert doc["otherData"]["interrupt_frames"] == []

    def test_swtch_renders_as_idle_category(self):
        analysis = golden_analysis("figure5_forkexec_v2.mpf")
        doc = capture_to_chrome_trace(analysis)
        idle = [e for e in doc["traceEvents"] if e.get("cat") == "idle"]
        assert idle
        assert all(e["name"] == "swtch" for e in idle)

    def test_other_data_carries_capture_stats(self):
        analysis = golden_analysis("figure5_forkexec_v2.mpf")
        doc = capture_to_chrome_trace(analysis, label="golden")
        other = doc["otherData"]
        assert other["label"] == "golden"
        assert other["wall_us"] == analysis.wall_us
        assert other["event_count"] == analysis.event_count
        assert other["procs"] == list(analysis.procs)

    def test_document_round_trips_through_json(self):
        analysis = golden_analysis("figure5_forkexec_v2.mpf")
        doc = capture_to_chrome_trace(analysis)
        again = json.loads(json.dumps(doc))
        assert again == doc


class TestFormatDispatch:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("t.jsonl", "jsonl"),
            ("t.ndjson", "jsonl"),
            ("t.prom", "prometheus"),
            ("t.txt", "prometheus"),
            ("t.json", "chrome"),
            ("t.trace", "chrome"),
            ("T.JSONL", "jsonl"),
        ],
    )
    def test_infer_format(self, path, expected):
        assert infer_format(path) == expected

    def test_unknown_extension_raises(self):
        with pytest.raises(ValueError, match="cannot infer"):
            infer_format("telemetry.csv")
        with pytest.raises(ValueError, match="unknown telemetry format"):
            render_telemetry(Telemetry(), "csv")

    def test_write_telemetry_round_trip(self, tmp_path):
        t = make_telemetry()
        t.count("c")
        path = tmp_path / "snap.jsonl"
        assert write_telemetry(path, t) == "jsonl"
        assert json.loads(path.read_text().splitlines()[0])["type"] == "meta"
        path = tmp_path / "snap.json"
        assert write_telemetry(path, t) == "chrome"
        assert "traceEvents" in json.loads(path.read_text())


# -- the --progress heartbeat -------------------------------------------------


class TestProgressReporter:
    def test_force_mode_emits_heartbeats(self):
        sink = io.StringIO()
        reporter = ProgressReporter(
            100, stream=sink, mode="force", interval_s=0.0, check_every=1
        )
        for _ in range(50):
            reporter.update()
        reporter.finish()
        text = sink.getvalue()
        assert reporter.heartbeats >= 2
        assert "50" in text and "/s" in text
        assert "ETA" in text  # total known -> percentage and ETA
        assert text.rstrip("\n").endswith("in 0.0s") or "in " in text

    def test_auto_mode_is_silent_off_tty(self):
        sink = io.StringIO()  # isatty() -> False
        reporter = ProgressReporter(
            100, stream=sink, mode="auto", interval_s=0.0, check_every=1
        )
        for _ in range(50):
            reporter.update()
        reporter.finish()
        assert sink.getvalue() == ""
        assert reporter.active is False
        assert reporter.count == 50  # still counts, for callers

    def test_wall_clock_cadence_limits_emits(self):
        sink = io.StringIO()
        reporter = ProgressReporter(
            stream=sink, mode="force", interval_s=3600.0, check_every=1
        )
        for _ in range(10_000):
            reporter.update()
        assert reporter.heartbeats == 0  # never due inside the interval
        reporter.finish()
        assert reporter.heartbeats == 1  # the final line always lands

    def test_wrap_counts_and_finishes(self):
        sink = io.StringIO()
        reporter = ProgressReporter(
            3, stream=sink, mode="force", interval_s=0.0, check_every=1
        )
        assert list(reporter.wrap(iter("abc"))) == ["a", "b", "c"]
        assert reporter.count == 3
        assert sink.getvalue().rstrip().endswith("s")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(mode="loud")

    def test_sharded_progress_callback_sees_every_event(self):
        names = NameTable.read(GOLDEN_DIR / "case_study.tags")
        capture = Capture.load(GOLDEN_DIR / "figure5_forkexec_v2.mpf", names)
        ticks: list[int] = []
        result = analyze_sharded(
            capture.records,
            capture.names,
            max_shard_events=64,
            workers=2,
            width_bits=capture.counter_width_bits,
            progress=ticks.append,
        )
        assert sum(ticks) == len(capture.records)
        assert len(ticks) == result.shard_count


# -- the P4xx lint family -----------------------------------------------------


class TestTelemetryLint:
    def test_clean_telemetry_is_clean(self):
        t = make_telemetry()
        with t.span("s"):
            t.count("c")
        report = lint_telemetry(t)
        assert len(report) == 0

    def test_p401_open_span(self):
        t = make_telemetry()
        t.span("never.closed")
        report = lint_telemetry(t)
        codes = [d.code for d in report]
        assert codes == ["P401"]
        assert "never.closed" in report[0].message

    def test_p402_name_in_two_registries(self):
        t = make_telemetry()
        t.counter("dup")
        extra = MetricRegistry("extra")
        extra.counter("dup")
        t.attach_registry(extra)
        codes = [d.code for d in lint_telemetry(t)]
        assert "P402" in codes

    def test_p403_sanitisation_collision(self):
        t = make_telemetry()
        t.counter("a.b")
        t.counter("a_b")
        codes = [d.code for d in lint_telemetry(t)]
        assert "P403" in codes

    def test_p404_dropped_spans(self):
        t = make_telemetry()
        t.tracer.max_spans = 1
        t.span("a").close()
        t.span("b").close()
        codes = [d.code for d in lint_telemetry(t)]
        assert "P404" in codes

    def test_self_check_stays_clean(self):
        # The shipped configuration must be vacuously clean: a disabled
        # singleton records nothing, so the pass finds nothing.
        report = lint_telemetry(TELEMETRY)
        assert len(report) == 0


# -- CLI ----------------------------------------------------------------------


def run_cli(*argv: str) -> list[str]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    assert code == 0
    return lines


class TestCliTelemetry:
    def test_analyze_report_bytes_identical_with_telemetry(self, tmp_path):
        capture = str(GOLDEN_DIR / "figure5_forkexec_v2.mpf")
        names = str(GOLDEN_DIR / "case_study.tags")
        plain = run_cli("analyze", capture, "--names", names)
        telem = run_cli(
            "analyze", capture, "--names", names,
            "--telemetry", str(tmp_path / "t.jsonl"),
        )
        assert "\n".join(plain) == "\n".join(telem)
        assert TELEMETRY.enabled is False  # disabled again on the way out

    def test_analyze_stream_telemetry_identical_too(self, tmp_path):
        capture = str(GOLDEN_DIR / "figure3_network_v2.mpf")
        names = str(GOLDEN_DIR / "case_study.tags")
        plain = run_cli("analyze", capture, "--names", names, "--stream")
        telem = run_cli(
            "analyze", capture, "--names", names, "--stream",
            "--telemetry", str(tmp_path / "t.prom"),
        )
        assert plain == telem

    def test_capture_telemetry_snapshot_has_the_catalog(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_cli(
            "capture", "--workload", "network", "--packets", "4",
            "--telemetry", str(path),
        )
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        metric_names = {d["name"] for d in docs if d["type"] == "metric"}
        assert "profiler.triggers.latched" in metric_names
        assert "profiler.ram.occupancy" in metric_names
        assert "sim.intrq.popped" in metric_names
        span_names = {d["name"] for d in docs if d["type"] == "span"}
        assert "capture.run" in span_names

    def test_analyze_shards_telemetry_has_pipeline_spans(self, tmp_path):
        path = tmp_path / "pipe.jsonl"
        run_cli(
            "analyze", str(GOLDEN_DIR / "figure5_forkexec_v2.mpf"),
            "--names", str(GOLDEN_DIR / "case_study.tags"),
            "--shards", "2", "--shard-events", "64",
            "--telemetry", str(path),
        )
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        span_names = {d["name"] for d in docs if d["type"] == "span"}
        assert {"pipeline.analyze_sharded", "pipeline.plan",
                "pipeline.shard", "pipeline.merge"} <= span_names

    def test_telemetry_prometheus_output_validates(self, tmp_path):
        path = tmp_path / "run.prom"
        run_cli(
            "analyze", str(GOLDEN_DIR / "figure3_network_v2.mpf"),
            "--names", str(GOLDEN_DIR / "case_study.tags"),
            "--telemetry", str(path),
        )
        check_prometheus_text(path.read_text())

    def test_bad_telemetry_extension_fails_before_the_run(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot infer"):
            main(
                [
                    "analyze", str(GOLDEN_DIR / "figure3_network_v2.mpf"),
                    "--names", str(GOLDEN_DIR / "case_study.tags"),
                    "--telemetry", str(tmp_path / "t.csv"),
                ],
                out=lambda s: None,
            )

    def test_progress_force_emits_on_stderr_only(self, capsys):
        out_lines = run_cli(
            "analyze", str(GOLDEN_DIR / "figure3_network_v2.mpf"),
            "--names", str(GOLDEN_DIR / "case_study.tags"),
            "--stream", "--progress=force",
        )
        captured = capsys.readouterr()
        assert "records" in captured.err and "/s" in captured.err
        plain = run_cli(
            "analyze", str(GOLDEN_DIR / "figure3_network_v2.mpf"),
            "--names", str(GOLDEN_DIR / "case_study.tags"),
            "--stream",
        )
        assert out_lines == plain  # stdout untouched by the heartbeat

    def test_progress_auto_is_silent_off_tty(self, capsys):
        run_cli(
            "analyze", str(GOLDEN_DIR / "figure3_network_v2.mpf"),
            "--names", str(GOLDEN_DIR / "case_study.tags"),
            "--stream", "--progress",
        )
        assert capsys.readouterr().err == ""


class TestCliTraceExport:
    def test_trace_export_writes_perfetto_document(self, tmp_path):
        output = tmp_path / "fig5.trace.json"
        lines = run_cli(
            "trace", "export", str(GOLDEN_DIR / "figure5_forkexec_v2.mpf"),
            "--names", str(GOLDEN_DIR / "case_study.tags"),
            "-o", str(output),
        )
        assert "chrome trace written" in lines[-1]
        doc = json.loads(output.read_text())
        check_chrome_events(doc["traceEvents"])
        track_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"P0", "P1", "interrupts"} <= track_names

    def test_trace_export_default_output_path(self, tmp_path):
        capture = tmp_path / "run.mpf"
        capture.write_bytes(
            (GOLDEN_DIR / "figure3_network_v2.mpf").read_bytes()
        )
        run_cli(
            "trace", "export", str(capture),
            "--names", str(GOLDEN_DIR / "case_study.tags"),
        )
        assert (tmp_path / "run.trace.json").exists()

    def test_trace_export_custom_interrupt_frames(self, tmp_path):
        output = tmp_path / "no-intr.json"
        run_cli(
            "trace", "export", str(GOLDEN_DIR / "figure3_network_v2.mpf"),
            "--names", str(GOLDEN_DIR / "case_study.tags"),
            "-o", str(output), "--interrupt-frames", "nosuchframe",
        )
        doc = json.loads(output.read_text())
        assert doc["otherData"]["interrupt_frames"] == ["nosuchframe"]
        assert not any(
            e.get("cat") == "interrupt" for e in doc["traceEvents"]
        )
