"""Failure-injection tests: disk media errors through the whole stack."""

from __future__ import annotations

import pytest

from repro.kernel.drivers.wd import SECTORS_PER_BLOCK, WD_RETRIES
from repro.kernel.fs.buf import BLOCK_BYTES
from repro.kernel.kernel import Kernel
from repro.kernel.proc import Proc
from repro.kernel.syscalls import syscall
from repro.workloads.fileio import seed_far_files


def fskernel() -> Kernel:
    kernel = Kernel()
    kernel.boot(with_network=False, with_console=False)
    return kernel


def read_file(kernel: Kernel, path: str, length: int) -> dict:
    state: dict = {}

    def body(k, proc: Proc):
        fd = yield from syscall(k, proc, "open", path)
        try:
            state["data"] = yield from syscall(k, proc, "read", fd, length)
        except IOError as exc:
            state["error"] = str(exc)
        yield from syscall(k, proc, "exit", 0)

    kernel.sched.spawn("reader", body)
    kernel.sched.run(until_ns=kernel.machine.now_ns + 600_000_000_000)
    return state


class TestMediaErrors:
    def seed(self, kernel: Kernel) -> int:
        """Seed /near and return its first physical sector."""
        seed_far_files(kernel, nblocks=2)
        volume = kernel.filesystem.volume
        inode = volume.iget(volume.root.entries["near"])
        return inode.blocks[0] * SECTORS_PER_BLOCK

    def test_bad_sector_raises_eio(self):
        kernel = fskernel()
        first_sector = self.seed(kernel)
        kernel.filesystem.disk.inject_error(first_sector + 3)
        state = read_file(kernel, "/near", BLOCK_BYTES)
        assert "EIO" in state.get("error", "")

    def test_driver_retries_before_failing(self):
        kernel = fskernel()
        first_sector = self.seed(kernel)
        disk = kernel.filesystem.disk
        disk.inject_error(first_sector)
        read_file(kernel, "/near", BLOCK_BYTES)
        assert disk.retries == WD_RETRIES
        assert kernel.stats["wd_errors"] == WD_RETRIES + 1

    def test_retries_cost_real_time(self):
        """Each retry is a recalibrate + rotation: errors are slow."""
        good = fskernel()
        self.seed(good)
        t0 = good.now_us
        read_file(good, "/near", BLOCK_BYTES)
        good_us = good.now_us - t0

        bad = fskernel()
        sector = self.seed(bad)
        bad.filesystem.disk.inject_error(sector)
        t0 = bad.now_us
        read_file(bad, "/near", BLOCK_BYTES)
        bad_us = bad.now_us - t0
        # At least two recalibrate delays net of the skipped sector
        # transfers (the failed read aborts the rest of the block).
        assert bad_us > good_us + 2 * 8_000

    def test_failed_read_not_cached(self):
        """After a repair, a re-read succeeds (the error was not cached)."""
        kernel = fskernel()
        sector = self.seed(kernel)
        disk = kernel.filesystem.disk
        disk.inject_error(sector)
        state = read_file(kernel, "/near", BLOCK_BYTES)
        assert "error" in state
        disk.repair(sector)
        state2 = read_file(kernel, "/near", BLOCK_BYTES)
        assert "error" not in state2
        assert len(state2["data"]) == BLOCK_BYTES

    def test_other_blocks_unaffected(self):
        kernel = fskernel()
        sector = self.seed(kernel)
        disk = kernel.filesystem.disk
        disk.inject_error(sector)  # block 0 is bad...
        state: dict = {}

        def body(k, proc: Proc):
            fd = yield from syscall(k, proc, "open", "/near")
            file = proc.file_for(fd)
            file.offset = BLOCK_BYTES  # ...but block 1 is fine
            state["data"] = yield from syscall(k, proc, "read", fd, 512)
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("reader", body)
        kernel.sched.run(until_ns=kernel.machine.now_ns + 600_000_000_000)
        assert len(state["data"]) == 512

    def test_writes_not_affected_by_read_errors(self):
        kernel = fskernel()
        disk = kernel.filesystem.disk
        disk.inject_error(33 * SECTORS_PER_BLOCK)
        state: dict = {}

        def body(k, proc: Proc):
            fd = yield from syscall(k, proc, "open", "/fresh", True)
            state["n"] = yield from syscall(
                k, proc, "write", fd, b"q" * BLOCK_BYTES, True
            )
            yield from syscall(k, proc, "exit", 0)

        kernel.sched.spawn("writer", body)
        kernel.sched.run(until_ns=kernel.machine.now_ns + 600_000_000_000)
        assert state["n"] == BLOCK_BYTES


class TestDisksort:
    def test_elevator_order(self):
        """Requests are served in one ascending sweep, not FIFO."""
        from repro.kernel.drivers.wd import WdDisk, _disksort_insert

        disk = WdDisk()
        disk.current_cyl = 0

        class Req:
            def __init__(self, blkno):
                self.blkno = blkno

        for blkno in (900, 100, 500, 300, 700):
            _disksort_insert(disk, Req(blkno))
        assert [r.blkno for r in disk.queue] == [100, 300, 500, 700, 900]

    def test_requests_behind_head_wait_for_next_sweep(self):
        from repro.kernel.drivers.wd import (
            SECTORS_PER_BLOCK,
            SECTORS_PER_CYL,
            WdDisk,
            _disksort_insert,
        )

        disk = WdDisk()
        # Head parked at cylinder 20 -> block ~640.
        disk.current_cyl = 20
        head_blk = 20 * SECTORS_PER_CYL // SECTORS_PER_BLOCK

        class Req:
            def __init__(self, blkno):
                self.blkno = blkno

        for blkno in (head_blk - 100, head_blk + 50, head_blk + 10):
            _disksort_insert(disk, Req(blkno))
        order = [r.blkno for r in disk.queue]
        # Ahead-of-head requests first (ascending), then the wrap.
        assert order == [head_blk + 10, head_blk + 50, head_blk - 100]

    def test_elevator_reduces_total_seek_vs_fifo(self):
        """The point of disksort: a scattered batch seeks less."""
        from repro.kernel.drivers.wd import WdDisk

        def total_seek(order):
            disk = WdDisk()
            disk.current_cyl = 0
            return sum(disk.seek_ns(b * 16) for b in order)

        fifo = total_seek([9000, 200, 7000, 400, 5000])
        swept = total_seek(sorted([9000, 200, 7000, 400, 5000]))
        assert swept < fifo
