"""Full-pipeline integration tests: the paper's figures, end to end."""

from __future__ import annotations

import pytest

from repro.analysis.summary import summarize
from repro.analysis.trace import format_trace
from repro.instrument.linker import ObjectModule, TwoStageLinker
from repro.profiler.eprom import DEFAULT_SOCKET_BASE
from repro.system import build_case_study
from repro.workloads.forkexec import fork_exec_storm
from repro.workloads.network_recv import network_receive


class TestBuild:
    def test_case_study_composition(self):
        system = build_case_study()
        assert system.kernel.booted
        assert system.kernel.profile_base_phys == DEFAULT_SOCKET_BASE
        assert system.image.profiled_functions >= 100
        assert system.board.ram.depth == 16384

    def test_name_file_has_the_papers_shape(self):
        """swtch carries '!', MGET carries '=', tags are even/odd pairs."""
        system = build_case_study()
        names = system.names
        assert names.by_name("swtch").context_switch
        assert names.by_name("MGET").inline
        tcp = names.by_name("tcp_input")
        assert tcp.value % 2 == 0

    def test_micro_profiling_selects_modules(self):
        system = build_case_study(profiled_modules=["netinet", "isa/if_we"])
        instrumented = set(system.kernel._entry_tags)
        assert "tcp_input" in instrumented and "weintr" in instrumented
        assert "pmap_remove" not in instrumented
        assert "bread" not in instrumented


class TestFigure3Shape:
    @pytest.fixture(scope="class")
    def summary(self):
        system = build_case_study()
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=50),
            label="figure-3",
        )
        return summarize(system.analyze(capture))

    def test_cpu_saturated(self, summary):
        """"the CPU is completely saturated" — paper: 98.99% busy."""
        assert summary.busy_fraction >= 0.95

    def test_bcopy_is_top(self, summary):
        """"most of its time is spent in bcopy" — 33.25% real."""
        rows = summary.rows()
        assert rows[0].name == "bcopy"
        assert 25 <= summary.pct_real(rows[0]) <= 45

    def test_in_cksum_is_second(self, summary):
        """in_cksum at 30.51%, just behind bcopy."""
        rows = summary.rows()
        assert rows[1].name == "in_cksum"
        assert 25 <= summary.pct_real(rows[1]) <= 42
        assert summary.pct_real(rows[0]) >= summary.pct_real(rows[1])

    def test_spl_family_share(self, summary):
        """"splnet, splx and spl0 contributed around 9% of the time"."""
        share = sum(
            summary.pct_real(summary.get(name))
            for name in ("splnet", "splx", "spl0", "splhigh")
            if summary.get(name) is not None
        )
        assert 3 <= share <= 13

    def test_expected_functions_present(self, summary):
        for name in ("soreceive", "werint", "weget", "malloc", "westart"):
            assert summary.get(name) is not None, f"{name} missing"

    def test_splnet_call_cost(self, summary):
        """Figure 3: splnet avg ~10 us across thousands of calls."""
        splnet = summary.get("splnet")
        assert splnet.calls > 100
        assert 7 <= splnet.avg_us <= 14


class TestFigure4Shape:
    def test_trace_contains_the_packet_path(self):
        system = build_case_study()
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=6),
            label="figure-4",
        )
        analysis = system.analyze(capture)
        text = format_trace(analysis)
        for fragment in (
            "-> ISAINTR",
            "-> weintr",
            "-> werint",
            "-> weread",
            "-> weget",
            "-> bcopy",
            "-> ipintr",
            "-> splnet",
            "-> in_cksum",
            "-> tcp_input",
            "-> in_pcblookup",
            "<- swtch",
            "== MGET",
        ):
            assert fragment in text, f"{fragment} missing from trace"

    def test_nesting_matches_the_paper(self):
        """werint under weintr under ISAINTR; tcp_input under ipintr."""
        system = build_case_study()
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=6)
        )
        analysis = system.analyze(capture)

        def parent_names(target: str) -> set[str]:
            parents = set()
            for node in analysis.nodes():
                for child in node.children:
                    if child.name == target:
                        parents.add(node.name)
            return parents

        assert "weintr" in parent_names("werint")
        assert "ISAINTR" in parent_names("weintr")
        assert "ipintr" in parent_names("tcp_input")
        assert "weread" in parent_names("weget")


class TestFigure5Shape:
    @pytest.fixture(scope="class")
    def summary(self):
        system = build_case_study()
        capture = system.profile(
            lambda: fork_exec_storm(
                system.kernel, iterations=3, print_status=True
            ),
            label="figure-5",
        )
        return summarize(system.analyze(capture))

    def test_pmap_remove_tops_the_profile(self, summary):
        """Figure 5: pmap_remove has the highest net time (28.22%)."""
        rows = summary.rows()
        assert rows[0].name == "pmap_remove"

    def test_pmap_pte_call_storm(self, summary):
        """Figure 5: pmap_pte called thousands of times at ~3 us."""
        pte = summary.get("pmap_pte")
        assert pte.calls >= 3_000
        assert pte.avg_us <= 5

    def test_vm_routines_dominate(self, summary):
        """"Over 50% of the time is being spent in the virtual memory
        routines"."""
        vm_names = (
            "pmap_remove",
            "pmap_pte",
            "pmap_enter",
            "pmap_protect",
            "pmap_copy",
            "vm_fault",
            "vm_page_lookup",
            "vm_page_alloc",
            "vm_page_free",
            "vmspace_fork",
            "vmspace_exec",
            "vmspace_alloc",
            "vmspace_teardown",
            "vm_map_find",
            "vm_map_delete",
            "kmem_alloc",
            "bzero",
        )
        share = sum(
            summary.pct_net(summary.get(name))
            for name in vm_names
            if summary.get(name) is not None
        )
        assert share >= 50

    def test_console_bcopyb_artifact(self, summary):
        """Figure 5's footnote: bcopyb ~3.6 ms per console scroll."""
        bcopyb = summary.get("bcopyb")
        assert bcopyb is not None
        assert 2_300 <= bcopyb.avg_us <= 4_500

    def test_figure5_averages(self, summary):
        """vm_page_lookup ~18 us, pmap_enter ~29 us inclusive."""
        lookup = summary.get("vm_page_lookup")
        enter = summary.get("pmap_enter")
        assert 10 <= lookup.avg_us <= 28
        assert 18 <= enter.avg_us <= 45


class TestOverheadClaim:
    def test_instrumentation_overhead_band(self):
        """Paper: "around 1 to 1.2% extra CPU cycles"."""
        instrumented = build_case_study()
        with_triggers = network_receive(instrumented.kernel, total_packets=15)
        plain = build_case_study(instrument=False)
        without = network_receive(plain.kernel, total_packets=15)
        overhead = (
            with_triggers.elapsed_us - without.elapsed_us
        ) / without.elapsed_us
        assert 0.002 <= overhead <= 0.03

    def test_no_noticeable_difference(self):
        """"No noticeable difference can be detected between a profiled
        and a non-profiled kernel" — both complete identically."""
        instrumented = build_case_study()
        a = network_receive(instrumented.kernel, total_packets=10)
        plain = build_case_study(instrument=False)
        b = network_receive(plain.kernel, total_packets=10)
        assert a.bytes_received == b.bytes_received
        assert a.packets_sent == b.packets_sent


class TestCaptureMechanics:
    def test_ram_fills_and_overflows_under_load(self):
        """Paper: "the Profiler RAM could be filled ... in as short a
        time as 300 milliseconds" — heavy receive load fills 16384."""
        system = build_case_study(board_depth=4096)
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=60)
        )
        assert capture.overflowed
        assert len(capture) == 4096

    def test_capture_roundtrips_through_file(self, tmp_path):
        system = build_case_study()
        capture = system.profile(
            lambda: network_receive(system.kernel, total_packets=5)
        )
        path = tmp_path / "run.mpf"
        capture.save(path)
        from repro.profiler.capture import Capture

        again = Capture.load(path, system.names)
        assert again.records == capture.records
        assert summarize(system.analyze(capture)).wall_us == summarize(
            system.analyze(again)
        ).wall_us


class TestLinkerIntegration:
    def test_profile_base_story(self):
        """Two-stage link: _ProfileBase lands where the kernel size says."""
        modules = [
            ObjectModule(name=f"mod{i}.o", text_bytes=10_000 + i, data_bytes=512)
            for i in range(40)
        ]
        linked = TwoStageLinker(eprom_phys=DEFAULT_SOCKET_BASE).link(modules)
        assert linked.profile_base > 0xFE000000
        # Growing the kernel moves the base.
        bigger = modules + [ObjectModule(name="extra.o", text_bytes=50_000, data_bytes=0)]
        relinked = TwoStageLinker(eprom_phys=DEFAULT_SOCKET_BASE).link(bigger)
        assert relinked.profile_base > linked.profile_base
