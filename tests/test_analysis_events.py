"""Tests for tag decode and 24-bit time reconstruction."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.analysis.columnar import unwrap_times
from repro.analysis.events import (
    EventKind,
    decode_capture,
    decode_records,
    reconstruct_times,
)
from repro.profiler.capture import Capture
from repro.profiler.ram import RawRecord
from repro.profiler.upload import read_capture_meta

from stream_helpers import make_names, stream


class TestReconstructTimes:
    def test_monotone_stream(self):
        records = [RawRecord(tag=0, time=t) for t in (10, 20, 35)]
        assert reconstruct_times(records) == [0, 10, 25]

    def test_single_wrap(self):
        records = [
            RawRecord(tag=0, time=0xFFFFF0),
            RawRecord(tag=0, time=0x000010),
        ]
        assert reconstruct_times(records) == [0, 0x20]

    def test_multiple_wraps(self):
        records = [
            RawRecord(tag=0, time=0xFFFFFE),
            RawRecord(tag=0, time=2),
            RawRecord(tag=0, time=0xFFFFFF),
            RawRecord(tag=0, time=5),
        ]
        times = reconstruct_times(records)
        assert times == [0, 4, 4 + 0xFFFFFD, 4 + 0xFFFFFD + 6]

    def test_empty(self):
        assert reconstruct_times([]) == []

    def test_out_of_range_time_rejected(self):
        class Fake:
            time = 1 << 24

        with pytest.raises(ValueError):
            reconstruct_times([Fake()])

    @given(
        gaps=st.lists(
            st.integers(min_value=0, max_value=(1 << 24) - 1),
            min_size=1,
            max_size=100,
        )
    )
    def test_any_sub_wrap_gaps_recovered(self, gaps):
        """Property: absolute times are recovered exactly for any stream
        whose inter-event gaps are below one wrap period."""
        absolute = [0]
        for gap in gaps:
            absolute.append(absolute[-1] + gap)
        records = [RawRecord(tag=0, time=t & 0xFFFFFF) for t in absolute]
        assert reconstruct_times(records) == absolute


class TestDecode:
    def test_decode_kinds(self, simple_names):
        capture = stream(
            simple_names,
            (">", "main", 0),
            ("=", "MGET", 5),
            ("<", "main", 10),
        )
        events = decode_capture(capture)
        assert [e.kind for e in events] == [
            EventKind.ENTRY,
            EventKind.INLINE,
            EventKind.EXIT,
        ]
        assert [e.name for e in events] == ["main", "MGET", "main"]
        assert [e.time_us for e in events] == [0, 5, 10]

    def test_unknown_tag(self, simple_names):
        records = [RawRecord(tag=40_000, time=0)]
        events = decode_records(records, simple_names)
        assert events[0].kind is EventKind.UNKNOWN
        assert events[0].name == "tag#40000"
        assert events[0].entry is None

    def test_context_switch_flag(self, simple_names):
        capture = stream(simple_names, (">", "swtch", 0), ("<", "swtch", 9))
        events = decode_capture(capture)
        assert all(e.is_context_switch for e in events)

    def test_indices_sequential(self, simple_names):
        capture = stream(
            simple_names, (">", "main", 0), (">", "read", 1), ("<", "read", 2)
        )
        assert [e.index for e in decode_capture(capture)] == [0, 1, 2]


class TestCounterWidthEdges:
    """The ``1 <= width_bits <= 24`` contract at its boundaries.

    A wrong wrap mask corrupts every reconstructed interval, so both
    decode engines validate the width wherever one enters the path —
    and both must accept exactly the same range.
    """

    def test_width_bounds_accepted(self, simple_names):
        records = [RawRecord(tag=0, time=0), RawRecord(tag=0, time=1)]
        # Width 1: a one-bit counter wrapping on every alternate tick.
        assert reconstruct_times(records, width_bits=1) == [0, 1]
        # Width 24: the stock board, full record range.
        assert reconstruct_times(records, width_bits=24) == [0, 1]
        for width in (1, 24):
            for decode in ("reference", "columnar"):
                assert decode_records(
                    records, simple_names, width_bits=width, decode=decode
                )

    @pytest.mark.parametrize("width_bits", [0, 25, -1])
    def test_width_out_of_bounds_rejected(self, simple_names, width_bits):
        records = [RawRecord(tag=0, time=0)]
        expected = f"counter width {width_bits} outside 1..24"
        with pytest.raises(ValueError, match=expected):
            reconstruct_times(records, width_bits=width_bits)
        with pytest.raises(ValueError, match=expected):
            unwrap_times([0], width_bits)
        for decode in ("reference", "columnar"):
            with pytest.raises(ValueError, match=expected):
                decode_records(
                    records, simple_names, width_bits=width_bits, decode=decode
                )

    def test_width_one_wraps_every_tick(self):
        """0,1,0,1 on a 1-bit counter is a strictly advancing timeline."""
        records = [RawRecord(tag=0, time=t) for t in (0, 1, 0, 1)]
        assert reconstruct_times(records, width_bits=1) == [0, 1, 2, 3]
        assert unwrap_times([0, 1, 0, 1], 1) == [0, 1, 2, 3]

    def test_unwrap_checked_by_default(self):
        with pytest.raises(ValueError, match="exceeds the 16-bit counter"):
            unwrap_times([0, 1 << 16], 16)

    def test_unwrap_check_false_masks_silently(self):
        """The shard planner's mode: over-width snapshots are masked, not
        rejected, matching the reference scanner's arithmetic."""
        assert unwrap_times([0, 1 << 16], 16, check=False) == [0, 0]
        assert unwrap_times([0, (1 << 16) + 5], 16, check=False) == [0, 5]

    def test_unwrap_carries_previous_and_base(self):
        first = unwrap_times([10, 20], 24)
        carried = unwrap_times([30], 24, previous=20, base=first[-1])
        assert first + carried == unwrap_times([10, 20, 30], 24)

    def test_overflow_flag_header_roundtrip(self, simple_names, tmp_path):
        """An MPF2 header carrying overflow + narrow width drives decode
        identically through both engines."""
        capture = stream(
            simple_names, (">", "main", 4), ("<", "main", 60_000)
        )
        narrowed = dataclasses.replace(
            capture, counter_width_bits=16, overflowed=True
        )
        path = tmp_path / "overflow.mpf"
        narrowed.save(path)
        meta = read_capture_meta(path)
        assert meta.overflowed is True
        assert meta.counter_width_bits == 16
        loaded = Capture.load(path, simple_names)
        assert loaded.overflowed is True
        assert loaded.counter_width_bits == 16
        reference = decode_capture(loaded, decode="reference")
        assert decode_capture(loaded, decode="columnar") == reference
        assert [e.time_us for e in reference] == [0, 59_996]
