"""Tests for tag decode and 24-bit time reconstruction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.events import (
    EventKind,
    decode_capture,
    decode_records,
    reconstruct_times,
)
from repro.profiler.ram import RawRecord

from stream_helpers import make_names, stream


class TestReconstructTimes:
    def test_monotone_stream(self):
        records = [RawRecord(tag=0, time=t) for t in (10, 20, 35)]
        assert reconstruct_times(records) == [0, 10, 25]

    def test_single_wrap(self):
        records = [
            RawRecord(tag=0, time=0xFFFFF0),
            RawRecord(tag=0, time=0x000010),
        ]
        assert reconstruct_times(records) == [0, 0x20]

    def test_multiple_wraps(self):
        records = [
            RawRecord(tag=0, time=0xFFFFFE),
            RawRecord(tag=0, time=2),
            RawRecord(tag=0, time=0xFFFFFF),
            RawRecord(tag=0, time=5),
        ]
        times = reconstruct_times(records)
        assert times == [0, 4, 4 + 0xFFFFFD, 4 + 0xFFFFFD + 6]

    def test_empty(self):
        assert reconstruct_times([]) == []

    def test_out_of_range_time_rejected(self):
        class Fake:
            time = 1 << 24

        with pytest.raises(ValueError):
            reconstruct_times([Fake()])

    @given(
        gaps=st.lists(
            st.integers(min_value=0, max_value=(1 << 24) - 1),
            min_size=1,
            max_size=100,
        )
    )
    def test_any_sub_wrap_gaps_recovered(self, gaps):
        """Property: absolute times are recovered exactly for any stream
        whose inter-event gaps are below one wrap period."""
        absolute = [0]
        for gap in gaps:
            absolute.append(absolute[-1] + gap)
        records = [RawRecord(tag=0, time=t & 0xFFFFFF) for t in absolute]
        assert reconstruct_times(records) == absolute


class TestDecode:
    def test_decode_kinds(self, simple_names):
        capture = stream(
            simple_names,
            (">", "main", 0),
            ("=", "MGET", 5),
            ("<", "main", 10),
        )
        events = decode_capture(capture)
        assert [e.kind for e in events] == [
            EventKind.ENTRY,
            EventKind.INLINE,
            EventKind.EXIT,
        ]
        assert [e.name for e in events] == ["main", "MGET", "main"]
        assert [e.time_us for e in events] == [0, 5, 10]

    def test_unknown_tag(self, simple_names):
        records = [RawRecord(tag=40_000, time=0)]
        events = decode_records(records, simple_names)
        assert events[0].kind is EventKind.UNKNOWN
        assert events[0].name == "tag#40000"
        assert events[0].entry is None

    def test_context_switch_flag(self, simple_names):
        capture = stream(simple_names, (">", "swtch", 0), ("<", "swtch", 9))
        events = decode_capture(capture)
        assert all(e.is_context_switch for e in events)

    def test_indices_sequential(self, simple_names):
        capture = stream(
            simple_names, (">", "main", 0), (">", "read", 1), ("<", "read", 2)
        )
        assert [e.index for e in decode_capture(capture)] == [0, 1, 2]
