"""Differential tests: columnar decode against the per-record reference.

Every property here generates a record stream (wrap-heavy timers,
interrupt bursts, unknown tags, zero-length and trace-RAM-filling
captures, MPF1 and MPF2 files) and asserts the two decode engines
agree *exactly*: field-identical ``DecodedEvent`` sequences, identical
shard plans, identical summary bytes (and therefore identical summary
hashes), and identical error messages and carried accumulator state
when a stream is malformed.

Case volume is tunable: ``REPRO_DIFF_EXAMPLES`` sets the per-property
example count (default 40, so the module runs well over 200 generated
cases locally); CI runs a smaller derandomized subset by exporting
``REPRO_DIFF_EXAMPLES=15`` and ``REPRO_DIFF_DERANDOMIZE=1``.
"""

from __future__ import annotations

import hashlib
import io
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import columnar
from repro.analysis.events import decode_records, iter_decoded_events
from repro.analysis.pipeline import analyze_sharded, plan_shards
from repro.analysis.summary import (
    SummaryAccumulator,
    summarize_columns,
    summarize_records,
)
from repro.profiler.ram import DEFAULT_DEPTH, RawRecord
from repro.profiler.upload import (
    decode_record_columns,
    dump_records,
    iter_capture_columns,
    iter_capture_file,
    iter_record_columns,
    iter_record_stream,
    load_records,
    write_capture_stream,
)
from stream_helpers import TIME_MASK, make_names

DIFF_EXAMPLES = int(os.environ.get("REPRO_DIFF_EXAMPLES", "40"))
DIFF_SETTINGS = settings(
    max_examples=DIFF_EXAMPLES,
    deadline=None,
    derandomize=bool(os.environ.get("REPRO_DIFF_DERANDOMIZE")),
)

NAMES = make_names(
    ("main", 500),
    ("read", 502),
    ("bcopy", 504),
    ("cksum", 506),
    ("ISAINTR", 508),
    ("tsleep", 510),
    ("swtch", 600, "!"),
    ("MGET", 1002, "="),
)

_ENTRIES = [NAMES.by_name(n) for n in (
    "main", "read", "bcopy", "cksum", "ISAINTR", "tsleep", "swtch", "MGET"
)]
KNOWN_TAGS = sorted(
    {e.entry_value for e in _ENTRIES}
    | {e.exit_value for e in _ENTRIES if not e.inline}
)

# Tags the table knows, plus the occasional stranger (decodes to "tag#N").
tag_strategy = st.one_of(
    st.sampled_from(KNOWN_TAGS),
    st.integers(min_value=0, max_value=0xFFFF),
)

# Mostly-tight deltas with the occasional near-full-range jump: a few
# hundred records are enough to wrap the 24-bit counter many times over.
delta_strategy = st.one_of(
    st.integers(min_value=0, max_value=64),
    st.integers(min_value=0, max_value=(1 << 23) - 1),
)


@st.composite
def record_streams(draw, max_records: int = 150) -> list[RawRecord]:
    """Raw streams: arbitrary tags, monotone wrapped counter snapshots."""
    pairs = draw(
        st.lists(st.tuples(tag_strategy, delta_strategy), max_size=max_records)
    )
    t = draw(st.integers(min_value=0, max_value=TIME_MASK))
    records = []
    for tag, delta in pairs:
        records.append(RawRecord(tag=tag, time=t))
        t = (t + delta) & TIME_MASK
    return records


@st.composite
def call_streams(draw, max_blocks: int = 30) -> list[RawRecord]:
    """Call-shaped streams: scheduling blocks with nested interrupt bursts.

    Each block is one quantum — ``swtch`` exit, a few call pairs (some
    interrupted mid-flight by a burst of nested ``ISAINTR`` frames, some
    inline ``MGET`` markers), ``swtch`` entry — so the summary state
    machine's suspension/resolution logic gets exercised, not just the
    raw decode.
    """
    blocks = draw(st.integers(min_value=0, max_value=max_blocks))
    t = draw(st.integers(min_value=0, max_value=TIME_MASK))
    swtch = NAMES.by_name("swtch")
    isaintr = NAMES.by_name("ISAINTR")
    mget = NAMES.by_name("MGET")
    functions = [NAMES.by_name(n) for n in ("main", "read", "bcopy", "cksum")]
    records = []

    def emit(tag: int, advance: int) -> None:
        nonlocal t
        records.append(RawRecord(tag=tag, time=t))
        t = (t + advance) & TIME_MASK

    for _ in range(blocks):
        emit(swtch.exit_value, draw(delta_strategy))
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            fn = draw(st.sampled_from(functions))
            emit(fn.entry_value, draw(delta_strategy))
            if draw(st.booleans()):
                burst = draw(st.integers(min_value=1, max_value=4))
                for _ in range(burst):
                    emit(isaintr.entry_value, draw(delta_strategy))
                if draw(st.booleans()):
                    emit(mget.entry_value, draw(delta_strategy))
                for _ in range(burst):
                    emit(isaintr.exit_value, draw(delta_strategy))
            emit(fn.exit_value, draw(delta_strategy))
        emit(swtch.entry_value, draw(delta_strategy))
    return records


def _event_fields(event):
    return (
        event.index,
        event.time_us,
        event.kind,
        event.name,
        event.entry,
        event.raw,
    )


def _summary_hash(summary) -> str:
    return hashlib.sha256(summary.format().encode()).hexdigest()


# -- raw-record layer --------------------------------------------------------


class TestRecordParity:
    @DIFF_SETTINGS
    @given(records=record_streams())
    def test_columnar_load_matches_reference(self, records):
        blob = dump_records(records)
        columns = decode_record_columns(blob)
        assert columns.to_records() == load_records(blob)
        assert columns.to_bytes() == blob
        for offset in (0, len(records) // 2, len(records) - 1):
            if 0 <= offset < len(records):
                assert columns.record(offset) == records[offset]

    @DIFF_SETTINGS
    @given(
        records=record_streams(),
        chunk_records=st.integers(min_value=1, max_value=64),
    )
    def test_chunked_stream_matches_reference(self, records, chunk_records):
        blob = dump_records(records)
        reference = list(iter_record_stream(io.BytesIO(blob)))
        batches = list(
            iter_record_columns(io.BytesIO(blob), chunk_records=chunk_records)
        )
        flattened = [r for batch in batches for r in batch.to_records()]
        assert flattened == reference
        assert all(len(batch) <= chunk_records for batch in batches)

    @DIFF_SETTINGS
    @given(
        records=record_streams(),
        version=st.integers(min_value=1, max_value=2),
        chunk_records=st.integers(min_value=1, max_value=97),
    )
    def test_capture_file_matches_reference(self, records, version, chunk_records):
        """MPF1 and MPF2 files decode identically through both readers."""
        buffer = io.BytesIO()
        write_capture_stream(buffer, records, version=version)
        buffer.seek(0)
        reference = list(iter_capture_file(buffer))
        buffer.seek(0)
        flattened = [
            r
            for batch in iter_capture_columns(buffer, chunk_records=chunk_records)
            for r in batch.to_records()
        ]
        assert flattened == reference


# -- decoded-event layer -----------------------------------------------------


class TestEventParity:
    @DIFF_SETTINGS
    @given(
        records=record_streams(),
        start_index=st.integers(min_value=0, max_value=100_000),
        time_base_us=st.integers(min_value=0, max_value=1 << 40),
    )
    def test_decoded_events_field_identical(self, records, start_index, time_base_us):
        reference = list(
            iter_decoded_events(
                iter(records),
                NAMES,
                start_index=start_index,
                time_base_us=time_base_us,
                decode="reference",
            )
        )
        columnar_events = list(
            iter_decoded_events(
                iter(records),
                NAMES,
                start_index=start_index,
                time_base_us=time_base_us,
                decode="columnar",
            )
        )
        assert len(columnar_events) == len(reference)
        for got, want in zip(columnar_events, reference):
            assert _event_fields(got) == _event_fields(want)

    @DIFF_SETTINGS
    @given(records=record_streams(max_records=80), width_bits=st.sampled_from([8, 16, 24]))
    def test_narrow_counter_widths_agree(self, records, width_bits):
        mask = (1 << width_bits) - 1
        narrowed = [RawRecord(tag=r.tag, time=r.time & mask) for r in records]
        assert decode_records(narrowed, NAMES, width_bits=width_bits, decode="columnar") == decode_records(
            narrowed, NAMES, width_bits=width_bits, decode="reference"
        )

    def test_zero_length_capture(self):
        assert decode_records([], NAMES, decode="columnar") == []
        assert decode_records([], NAMES, decode="reference") == []
        assert decode_record_columns(b"").to_records() == []

    def test_chunk_boundary_wrap_carry(self):
        """Wraps that straddle the 8192-record columnar batch boundary."""
        records = []
        t = 0
        for i in range(3 * 8192 + 17):
            # Big steps so the counter wraps inside *and* across batches.
            t = (t + 0x31_0000 + i) & TIME_MASK
            records.append(RawRecord(tag=KNOWN_TAGS[i % len(KNOWN_TAGS)], time=t))
        reference = decode_records(records, NAMES, decode="reference")
        via_columns = decode_records(records, NAMES, decode="columnar")
        assert via_columns == reference
        # Absolute time must climb monotonically across batch seams.
        times = [e.time_us for e in via_columns]
        assert times == sorted(times)

    def test_max_count_capture(self):
        """A capture that exactly fills the trace RAM (the overflow case)."""
        records = [
            RawRecord(tag=KNOWN_TAGS[i % len(KNOWN_TAGS)], time=(i * 37) & TIME_MASK)
            for i in range(DEFAULT_DEPTH)
        ]
        assert decode_records(records, NAMES, decode="columnar") == decode_records(
            records, NAMES, decode="reference"
        )

    @DIFF_SETTINGS
    @given(records=record_streams(max_records=60))
    def test_over_width_error_messages_identical(self, records):
        """A 24-bit snapshot fed as 16-bit: same ValueError, same message."""
        poisoned = list(records) + [RawRecord(tag=KNOWN_TAGS[0], time=0x1_0000)]
        errors = []
        for decode in ("reference", "columnar"):
            with pytest.raises(ValueError) as excinfo:
                decode_records(poisoned, NAMES, width_bits=16, decode=decode)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]


# -- summary layer -----------------------------------------------------------


class TestSummaryParity:
    @DIFF_SETTINGS
    @given(
        records=call_streams(),
        chunk_records=st.integers(min_value=1, max_value=100),
        include_swtch=st.booleans(),
    )
    def test_summary_bytes_identical(self, records, chunk_records, include_swtch):
        reference = summarize_records(
            iter(records), NAMES, include_swtch=include_swtch
        )
        batches = (
            columnar.columns_from_records(records[i : i + chunk_records])
            for i in range(0, len(records), chunk_records)
        )
        via_columns = summarize_columns(batches, NAMES, include_swtch=include_swtch)
        assert via_columns.format() == reference.format()
        assert _summary_hash(via_columns) == _summary_hash(reference)

    @DIFF_SETTINGS
    @given(records=record_streams())
    def test_summary_bytes_identical_on_raw_streams(self, records):
        """Unknown tags and unmatched exits summarise identically too."""
        reference = summarize_records(iter(records), NAMES)
        via_columns = summarize_columns(
            [columnar.columns_from_records(records)], NAMES
        )
        assert via_columns.format() == reference.format()

    @DIFF_SETTINGS
    @given(
        prefix=call_streams(max_blocks=6),
        suffix=call_streams(max_blocks=6),
        bad_offset=st.integers(min_value=0, max_value=5),
    )
    def test_carried_state_identical_after_mid_batch_error(
        self, prefix, suffix, bad_offset
    ):
        """An over-width snapshot mid-batch leaves both accumulators in the
        same state: after catching the (identical) error, feeding the rest
        of the stream still produces byte-identical summaries.

        The accumulators run at 16-bit width so a legal 24-bit
        ``RawRecord`` snapshot can poison the batch.
        """
        mask = (1 << 16) - 1
        prefix = [RawRecord(tag=r.tag, time=r.time & mask) for r in prefix]
        suffix = [RawRecord(tag=r.tag, time=r.time & mask) for r in suffix]
        poison = RawRecord(tag=KNOWN_TAGS[1], time=mask + 1)
        bad_batch = list(prefix[: bad_offset + 3]) + [poison]

        def run(feed):
            accumulator = SummaryAccumulator(NAMES, width_bits=16)
            feed(accumulator, prefix)
            try:
                feed(accumulator, bad_batch)
            except ValueError as exc:
                message = str(exc)
            else:  # pragma: no cover - the poison record must raise
                raise AssertionError("over-width record did not raise")
            feed(accumulator, suffix)
            return message, accumulator.summary().format()

        ref_message, ref_text = run(
            lambda acc, recs: acc.feed_records(recs)
        )
        col_message, col_text = run(
            lambda acc, recs: acc.feed_columns(columnar.columns_from_records(recs))
        )
        assert col_message == ref_message
        assert col_text == ref_text


# -- shard-planner layer -----------------------------------------------------


class TestPlannerParity:
    @DIFF_SETTINGS
    @given(
        records=call_streams(),
        max_shard_events=st.integers(min_value=4, max_value=64),
    )
    def test_shard_plans_identical(self, records, max_shard_events):
        reference = plan_shards(
            records, NAMES, max_shard_events=max_shard_events, decode="reference"
        )
        via_columns = plan_shards(
            records, NAMES, max_shard_events=max_shard_events, decode="columnar"
        )
        assert via_columns == reference

    def test_analyze_sharded_summary_identical(self):
        records = []
        t = 0
        swtch = NAMES.by_name("swtch")
        functions = [NAMES.by_name(n) for n in ("main", "read", "bcopy")]
        for block in range(600):
            records.append(RawRecord(tag=swtch.exit_value, time=t & TIME_MASK))
            t += 7
            fn = functions[block % 3]
            records.append(RawRecord(tag=fn.entry_value, time=t & TIME_MASK))
            t += 11
            records.append(RawRecord(tag=fn.exit_value, time=t & TIME_MASK))
            t += 5
            records.append(RawRecord(tag=swtch.entry_value, time=t & TIME_MASK))
            t += 23
        reference = analyze_sharded(
            records, NAMES, workers=2, max_shard_events=256, decode="reference"
        )
        via_columns = analyze_sharded(
            records, NAMES, workers=2, max_shard_events=256, decode="columnar"
        )
        assert via_columns.summary.format() == reference.summary.format()
        assert [p for p in via_columns.plans] == [p for p in reference.plans]


# -- entry/exit pairing ------------------------------------------------------


class TestPairEntryExits:
    def test_spans_match_hand_computation(self):
        steps = [
            (">", "main", 0),
            (">", "read", 10),
            (">", "ISAINTR", 15),
            ("<", "ISAINTR", 18),
            ("<", "read", 30),
            ("<", "main", 50),
            (">", "bcopy", 60),  # never exits: no span
        ]
        records = []
        for op, name, time_us in steps:
            entry = NAMES.by_name(name)
            tag = entry.entry_value if op == ">" else entry.exit_value
            records.append(RawRecord(tag=tag, time=time_us))
        events = columnar.decode_columns(
            columnar.columns_from_records(records), NAMES
        )
        spans = columnar.pair_entry_exits(events)
        assert [(s.name, s.entry_index, s.exit_index, s.elapsed_us) for s in spans] == [
            ("ISAINTR", 2, 3, 3),
            ("read", 1, 4, 20),
            ("main", 0, 5, 50),
        ]

    @DIFF_SETTINGS
    @given(records=call_streams())
    def test_spans_are_consistent_with_events(self, records):
        events = columnar.decode_columns(
            columnar.columns_from_records(records), NAMES
        )
        for span in columnar.pair_entry_exits(events):
            assert events.codes[span.entry_index] == columnar.CODE_ENTRY
            assert events.codes[span.exit_index] == columnar.CODE_EXIT
            assert events.names[span.entry_index] == span.name
            assert events.names[span.exit_index] == span.name
            assert span.elapsed_us == (
                events.times[span.exit_index] - events.times[span.entry_index]
            )
            assert span.elapsed_us >= 0
