"""Tests for the summary report, trace report, histograms and graphs."""

from __future__ import annotations

import networkx as nx

from repro.analysis.callstack import analyze_capture
from repro.analysis.graph import (
    call_graph,
    heaviest_paths,
    idle_active_split,
    subsystem_rollup,
    to_dot,
)
from repro.analysis.histogram import histogram_for
from repro.analysis.reports import full_report
from repro.analysis.summary import summarize
from repro.analysis.trace import format_trace

from stream_helpers import stream


def busy_capture(simple_names):
    return stream(
        simple_names,
        (">", "main", 0),
        (">", "read", 10),
        (">", "bcopy", 20),
        ("<", "bcopy", 120),
        ("<", "read", 150),
        (">", "read", 160),
        (">", "bcopy", 170),
        ("<", "bcopy", 240),
        ("<", "read", 260),
        (">", "tsleep", 270),
        (">", "swtch", 280),
        ("<", "swtch", 380),
        ("<", "tsleep", 390),
        ("<", "main", 400),
    )


class TestSummary:
    def test_counts_and_times(self, simple_names):
        summary = summarize(analyze_capture(busy_capture(simple_names)))
        bcopy = summary.get("bcopy")
        assert bcopy.calls == 2
        assert bcopy.elapsed_us == 100 + 70
        assert bcopy.net_us == 170
        assert bcopy.max_us == 100 and bcopy.min_us == 70 and bcopy.avg_us == 85
        read = summary.get("read")
        assert read.calls == 2
        assert read.elapsed_us == 140 + 100
        assert read.net_us == (140 - 100) + (100 - 70)

    def test_idle_accounting(self, simple_names):
        summary = summarize(analyze_capture(busy_capture(simple_names)))
        assert summary.wall_us == 400
        assert summary.idle_us == 100
        assert summary.busy_us == 300
        assert abs(summary.busy_fraction - 0.75) < 1e-9

    def test_swtch_excluded_by_default(self, simple_names):
        summary = summarize(analyze_capture(busy_capture(simple_names)))
        assert summary.get("swtch") is None

    def test_rows_sorted_by_net_desc(self, simple_names):
        summary = summarize(analyze_capture(busy_capture(simple_names)))
        nets = [row.net_us for row in summary.rows()]
        assert nets == sorted(nets, reverse=True)

    def test_percentages(self, simple_names):
        summary = summarize(analyze_capture(busy_capture(simple_names)))
        bcopy = summary.get("bcopy")
        assert abs(summary.pct_real(bcopy) - 100 * 170 / 400) < 1e-9
        assert abs(summary.pct_net(bcopy) - 100 * 170 / 300) < 1e-9

    def test_format_has_figure3_header(self, simple_names):
        text = summarize(analyze_capture(busy_capture(simple_names))).format()
        assert "Elapsed time = 0 sec 400 us (14 tags)" in text
        assert "Accumulated run time = 0 sec 300 us (75.00%)" in text
        assert "Idle time = 0 sec 100 us" in text
        assert "% real" in text and "% net" in text
        # Sorted body: bcopy is the top row.
        body = text.splitlines()[5:]
        assert "bcopy" in body[0]

    def test_format_limit(self, simple_names):
        summary = summarize(analyze_capture(busy_capture(simple_names)))
        assert len(summary.format(limit=1).splitlines()) < len(
            summary.format().splitlines()
        )


class TestTrace:
    def test_trace_shape(self, simple_names):
        text = format_trace(analyze_capture(busy_capture(simple_names)))
        assert "-> main" in text
        assert "-> bcopy (100 us)" in text          # leaf: single time
        assert "-> read (40 us, 140 total)" in text  # non-leaf: net, total
        assert "<- swtch" in text

    def test_timestamps_figure4_format(self, simple_names):
        """Times are relative to the first event and render s:mmm uuu."""
        capture = stream(
            simple_names,
            (">", "main", 0),
            (">", "read", 2_671),
            ("<", "read", 1_002_345),
            ("<", "main", 1_500_000),
        )
        text = format_trace(analyze_capture(capture))
        assert "0:002 671" in text  # read's entry
        assert "1:500 000" in text  # main's return

    def test_context_switch_line(self, simple_names):
        capture = stream(
            simple_names,
            (">", "main", 0),
            (">", "tsleep", 10),
            (">", "swtch", 20),
            ("<", "swtch", 50),
            (">", "read", 60),  # fresh proc
            ("<", "read", 90),
        )
        text = format_trace(analyze_capture(capture))
        assert "---- Context switch in ----" in text

    def test_window_filtering(self, simple_names):
        analysis = analyze_capture(busy_capture(simple_names))
        text = format_trace(analysis, start_us=155, end_us=265)
        assert "-> read (30 us, 100 total)" in text
        assert "(100 us)" not in text  # first bcopy call is outside

    def test_inline_marks_rendered(self, simple_names):
        capture = stream(
            simple_names,
            (">", "main", 0),
            ("=", "MGET", 5),
            ("<", "main", 10),
        )
        text = format_trace(analyze_capture(capture))
        assert "== MGET" in text


class TestHistogram:
    def test_histogram_buckets(self, simple_names):
        analysis = analyze_capture(busy_capture(simple_names))
        hist = histogram_for(analysis, "bcopy", buckets=3)
        assert hist.samples == 2
        assert sum(hist.counts) == 2
        assert hist.min_us == 70 and hist.max_us == 100

    def test_histogram_empty(self, simple_names):
        analysis = analyze_capture(busy_capture(simple_names))
        hist = histogram_for(analysis, "nonexistent")
        assert hist.samples == 0
        assert "0 calls" in hist.format()

    def test_histogram_render(self, simple_names):
        analysis = analyze_capture(busy_capture(simple_names))
        text = histogram_for(analysis, "bcopy").format()
        assert "bcopy: 2 calls" in text and "#" in text


class TestGraph:
    def test_call_graph_edges(self, simple_names):
        graph = call_graph(analyze_capture(busy_capture(simple_names)))
        assert isinstance(graph, nx.DiGraph)
        assert graph.edges["main", "read"]["calls"] == 2
        assert graph.edges["read", "bcopy"]["inclusive_us"] == 170
        assert graph.nodes["bcopy"]["net_us"] == 170

    def test_subsystem_rollup(self, simple_names):
        analysis = analyze_capture(busy_capture(simple_names))
        rollup = subsystem_rollup(
            analysis, {"bcopy": "libkern", "read": "fs", "main": "user"}
        )
        assert rollup["libkern"]["net_us"] == 170
        assert rollup["fs"]["calls"] == 2
        assert "tsleep" not in rollup  # maps to default bucket
        assert rollup["other"]["calls"] == 1

    def test_heaviest_paths(self, simple_names):
        graph = call_graph(analyze_capture(busy_capture(simple_names)))
        chains = heaviest_paths(graph, "main")
        assert chains[0][0][:2] == ["main", "read"]

    def test_to_dot(self, simple_names):
        graph = call_graph(analyze_capture(busy_capture(simple_names)))
        dot = to_dot(graph)
        assert dot.startswith("digraph") and '"main" -> "read"' in dot

    def test_idle_active_split(self, simple_names):
        split = idle_active_split(analyze_capture(busy_capture(simple_names)))
        assert split["wall_us"] == 400 and split["idle_us"] == 100


class TestFullReport:
    def test_report_contains_both_sections(self, simple_names):
        text = full_report(busy_capture(simple_names))
        assert "Elapsed time" in text
        assert "Code path trace:" in text
        assert "-> main" in text

    def test_overflow_note(self, simple_names):
        capture = busy_capture(simple_names)
        capture.overflowed = True
        assert "overflowed" in full_report(capture)

    def test_label_shown(self, simple_names):
        assert "synthetic" in full_report(busy_capture(simple_names))
