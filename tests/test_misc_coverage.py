"""Edge-path tests across packages (session failures, report notes, ...)."""

from __future__ import annotations

import pytest

from repro.analysis.reports import analyze_and_summarize, full_report
from repro.instrument.namefile import NameFileError, parse_line, parse_name_file
from repro.profiler.capture import CaptureSession, synthetic_capture
from repro.profiler.hardware import ProfilerBoard
from repro.profiler.ram import RawRecord

from stream_helpers import make_names, stream


class TestCaptureSession:
    def test_exception_leaves_no_capture(self, simple_names):
        board = ProfilerBoard(depth=8)
        session = CaptureSession(board, simple_names)
        with pytest.raises(RuntimeError, match="boom"):
            with session:
                raise RuntimeError("boom")
        with pytest.raises(RuntimeError, match="not completed"):
            session.capture
        # The board was disarmed despite the failure.
        assert not board.active_led

    def test_nested_sessions_reset_the_board(self, simple_names):
        board = ProfilerBoard(depth=8)
        with CaptureSession(board, simple_names) as first:
            board.eprom_strobe(offset=2, now_ns=1_000)
        assert len(first.capture) == 1
        with CaptureSession(board, simple_names) as second:
            pass  # records from the first run must not leak in
        assert len(second.capture) == 0

    def test_synthetic_capture(self, simple_names):
        capture = synthetic_capture(
            [RawRecord(tag=500, time=0), RawRecord(tag=501, time=9)],
            simple_names,
        )
        analysis, summary = analyze_and_summarize(capture)
        assert summary.get("main").calls == 1
        assert analysis.wall_us == 9


class TestReports:
    def test_anomaly_note_in_full_report(self, simple_names):
        capture = stream(
            simple_names,
            ("<", "read", 10),  # unmatched exit: one anomaly
            (">", "main", 20),
            ("<", "main", 40),
        )
        text = full_report(capture)
        assert "reconstruction anomalies" in text

    def test_trace_can_be_suppressed(self, simple_names):
        capture = stream(simple_names, (">", "main", 0), ("<", "main", 10))
        text = full_report(capture, include_trace=False)
        assert "Code path trace" not in text


class TestNameFileEdges:
    def test_conflicting_modifiers_rejected_either_order(self):
        with pytest.raises(NameFileError):
            parse_line("weird/100=!")

    def test_conflicting_modifiers_rejected(self):
        with pytest.raises(NameFileError):
            parse_name_file("bad/100!=\n")

    def test_negative_value_rejected(self):
        with pytest.raises(NameFileError):
            parse_name_file("f/-2\n")


class TestInstrumentEdges:
    def test_predicate_and_modules_combine(self):
        from repro.instrument.compiler import InstrumentingCompiler
        from repro.kernel import import_all
        from repro.kernel.kfunc import registered_functions

        import_all()
        image = InstrumentingCompiler().compile(
            registered_functions(),
            modules=["netinet"],
            predicate=lambda f: not f.is_asm,
        )
        names = set(image.instrumented)
        assert "tcp_input" in names
        assert "bcopy" not in names  # asm excluded by predicate

    def test_asm_listing_inline_form(self):
        from repro.instrument.compiler import InstrumentingCompiler
        from repro.instrument.tags import TagEntry

        listing = InstrumentingCompiler.asm_listing(
            "MGET", TagEntry(name="MGET", value=1002, inline=True)
        )
        assert "movb _ProfileBase+1002" in listing
        assert ".globl" not in listing  # inline: no function prologue


class TestTagSoupEdges:
    def test_modifier_order_both_ways(self):
        # '!' before '=' and after are both structural errors for the
        # same tag; the parser must reject rather than mis-assign.
        with pytest.raises(NameFileError):
            parse_name_file("x/100=!\n")

    def test_whitespace_in_name_rejected(self):
        with pytest.raises(NameFileError):
            parse_name_file("two words/100\n")


class TestBoardCounterVariants:
    def test_narrow_counter_wraps_fast(self, simple_names):
        from repro.profiler.counter import MicrosecondCounter

        board = ProfilerBoard(counter=MicrosecondCounter(width_bits=8))
        board.arm()
        board.eprom_strobe(offset=500, now_ns=0)
        board.eprom_strobe(offset=501, now_ns=300_000_000)  # 300 ms later
        # The 8-bit counter wrapped many times; the stored values are
        # truncated, and only sub-wrap gaps are recoverable.
        assert board.ram[1].time <= 0xFF

    def test_phase_offset_is_transparent_to_intervals(self):
        from repro.profiler.counter import MicrosecondCounter

        counter = MicrosecondCounter()
        counter.phase_ticks = 123_456
        s1 = counter.sample(5_000_000)
        s2 = counter.sample(9_000_000)
        assert counter.interval_ticks(s1, s2) == 4_000
