"""Tests for the kernel execution core: advance, dispatch, spl, triggers."""

from __future__ import annotations

import pytest

from repro.instrument.compiler import InstrumentingCompiler
from repro.kernel.intr import (
    IPL_CLOCK,
    IPL_NET,
    spl0,
    splhigh,
    splnet,
    splx,
)
from repro.kernel.kernel import Kernel, KernelConfigError
from repro.kernel.kfunc import registered_functions
from repro.profiler.eprom import PiggyBackAdapter
from repro.profiler.hardware import ProfilerBoard
from repro.sim.engine import InterruptLine


def make_kernel() -> Kernel:
    return Kernel()


def line(kernel: Kernel, ipl: int, fired: list, name: str = "dev") -> InterruptLine:
    return InterruptLine(
        irq=5,
        name=name,
        ipl=ipl,
        handler=lambda: fired.append(kernel.machine.now_ns),
    )


class TestAdvance:
    def test_plain_advance_moves_time(self):
        kernel = make_kernel()
        kernel.advance(12_345)
        assert kernel.machine.now_ns == 12_345

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            make_kernel().advance(-1)

    def test_due_interrupt_delivered_mid_advance(self):
        kernel = make_kernel()
        fired: list[int] = []
        kernel.machine.interrupts.post(line(kernel, IPL_NET, fired), due_ns=5_000)
        kernel.advance(20_000)
        assert len(fired) == 1
        # Delivered at (or just after) its due time, not at the end.
        assert fired[0] >= 5_000
        assert fired[0] < 15_000
        # The interrupted code still got its full 20 us of CPU.
        assert kernel.machine.now_ns > 20_000

    def test_masked_interrupt_deferred_until_spl_drops(self):
        kernel = make_kernel()
        fired: list[int] = []
        kernel.machine.interrupts.post(line(kernel, IPL_NET, fired), due_ns=1_000)
        s = splnet(kernel)
        kernel.advance(50_000)
        assert fired == []  # masked
        splx(kernel, s)  # drops the level: delivery happens here
        assert len(fired) == 1

    def test_spl0_delivers_pending(self):
        kernel = make_kernel()
        fired: list[int] = []
        kernel.machine.interrupts.post(line(kernel, IPL_NET, fired), due_ns=1_000)
        splhigh(kernel)
        kernel.advance(10_000)
        assert fired == []
        spl0(kernel)
        assert len(fired) == 1

    def test_higher_priority_nests_inside_lower(self):
        kernel = make_kernel()
        order: list[str] = []

        def net_handler():
            order.append("net-start")
            kernel.work(100_000)  # long handler: clock fires inside
            order.append("net-end")

        def clock_handler():
            order.append("clock")

        net = InterruptLine(irq=9, name="net", ipl=IPL_NET, handler=net_handler)
        clk = InterruptLine(irq=0, name="clk", ipl=IPL_CLOCK, handler=clock_handler)
        kernel.machine.interrupts.post(net, due_ns=1_000)
        kernel.machine.interrupts.post(clk, due_ns=30_000)
        kernel.advance(10_000)
        assert order == ["net-start", "clock", "net-end"]

    def test_same_level_does_not_nest(self):
        kernel = make_kernel()
        depth = {"current": 0, "max": 0}

        def handler():
            depth["current"] += 1
            depth["max"] = max(depth["max"], depth["current"])
            kernel.work(50_000)
            depth["current"] -= 1

        net = InterruptLine(irq=9, name="net", ipl=IPL_NET, handler=handler)
        for i in range(5):
            kernel.machine.interrupts.post(net, due_ns=1_000 + i * 10_000)
        kernel.advance(200_000)
        assert depth["max"] == 1
        assert kernel.stats["intr"] == 5


class TestSpl:
    def test_raise_and_restore(self):
        kernel = make_kernel()
        assert kernel.ipl == 0
        s = splnet(kernel)
        assert kernel.ipl == IPL_NET and s == 0
        s2 = splhigh(kernel)
        assert s2 == IPL_NET
        splx(kernel, s2)
        assert kernel.ipl == IPL_NET
        splx(kernel, s)
        assert kernel.ipl == 0

    def test_splnet_does_not_lower(self):
        kernel = make_kernel()
        splhigh(kernel)
        splnet(kernel)
        assert kernel.ipl > IPL_NET  # raising primitive never lowers

    def test_splnet_cost_calibration(self):
        """Table 1: splnet ~11 us per call."""
        kernel = make_kernel()
        before = kernel.machine.now_ns
        splnet(kernel)
        cost_us = (kernel.machine.now_ns - before) / 1_000
        assert 7 <= cost_us <= 14

    def test_spl0_cost_calibration(self):
        """Table 1: spl0 ~25 us per call (vs splx ~3 us)."""
        kernel = make_kernel()
        splhigh(kernel)
        before = kernel.machine.now_ns
        spl0(kernel)
        spl0_us = (kernel.machine.now_ns - before) / 1_000
        splhigh(kernel)
        before = kernel.machine.now_ns
        splx(kernel, IPL_NET)
        splx_us = (kernel.machine.now_ns - before) / 1_000
        assert 8 <= spl0_us <= 30
        assert splx_us < spl0_us

    def test_bad_splx_level_rejected(self):
        with pytest.raises(ValueError):
            splx(make_kernel(), 99)


class TestTriggers:
    def make_instrumented_kernel(self) -> tuple[Kernel, ProfilerBoard]:
        import repro.kernel as kpkg

        kpkg.import_all()
        kernel = Kernel()
        board = ProfilerBoard()
        adapter = PiggyBackAdapter(board)
        kernel.attach_profiler(adapter)
        image = InstrumentingCompiler().compile(registered_functions())
        image.install(kernel)
        return kernel, board

    def test_instrumented_function_records_events(self):
        kernel, board = self.make_instrumented_kernel()
        board.arm()
        splnet(kernel)
        assert board.events_stored == 2  # entry + exit
        entry = kernel._entry_tags["splnet"]
        assert board.ram[0].tag == entry
        assert board.ram[1].tag == entry + 1

    def test_disarmed_board_records_nothing_but_costs_remain(self):
        kernel, board = self.make_instrumented_kernel()
        before = kernel.machine.now_ns
        splnet(kernel)
        assert board.events_stored == 0
        assert kernel.machine.now_ns > before  # triggers still executed

    def test_uninstrumented_kernel_skips_triggers(self):
        kernel = Kernel()
        board = ProfilerBoard()
        kernel.attach_profiler(PiggyBackAdapter(board))
        board.arm()
        splnet(kernel)
        assert board.events_stored == 0

    def test_triggers_without_board_is_config_error(self):
        kernel = Kernel()
        kernel.set_profile_map({"splnet": 500}, {})
        with pytest.raises(KernelConfigError):
            splnet(kernel)

    def test_inline_trigger(self):
        kernel, board = self.make_instrumented_kernel()
        kernel.set_profile_map({}, {"MGET": 1002})
        board.arm()
        kernel.inline_trigger("MGET")
        assert board.events_stored == 1
        assert board.ram[0].tag == 1002

    def test_clear_profile_map(self):
        kernel, board = self.make_instrumented_kernel()
        kernel.clear_profile_map()
        board.arm()
        splnet(kernel)
        assert board.events_stored == 0
        assert kernel.instrumented_functions == 0


class TestSoftInterrupts:
    def test_soft_interrupt_runs_when_level_permits(self):
        kernel = make_kernel()
        ran: list[str] = []
        kernel.register_soft_interrupt("net", IPL_NET, lambda: ran.append("net"))
        kernel.request_soft_interrupt("net")
        s = splnet(kernel)
        kernel.run_soft_interrupts()
        assert ran == []  # masked at splnet
        splx(kernel, s)
        assert ran == ["net"]

    def test_soft_interrupt_runs_at_its_level(self):
        kernel = make_kernel()
        seen: list[int] = []
        kernel.register_soft_interrupt("net", IPL_NET, lambda: seen.append(kernel.ipl))
        kernel.request_soft_interrupt("net")
        kernel.run_soft_interrupts()
        assert seen == [IPL_NET]
        assert kernel.ipl == 0  # restored

    def test_boot_is_one_shot(self):
        kernel = make_kernel()
        kernel.boot(with_network=False, with_disk=False, with_console=False)
        with pytest.raises(KernelConfigError):
            kernel.boot()


class TestKstack:
    def test_current_function_tracking(self):
        kernel = make_kernel()
        assert kernel.current_function == "<user>"
        seen: list[str] = []

        from repro.kernel.kfunc import kfunc

        @kfunc(module="test/kstack", name="kstack_outer_fn")
        def outer(k):
            seen.append(k.current_function)
            inner(k)
            seen.append(k.current_function)

        @kfunc(module="test/kstack", name="kstack_inner_fn")
        def inner(k):
            seen.append(k.current_function)

        outer(kernel)
        assert seen == ["kstack_outer_fn", "kstack_inner_fn", "kstack_outer_fn"]
        assert kernel.kstack == []
