"""Unit tests for the simulated clock and interrupt queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import InterruptLine, InterruptQueue, SimClock, TimeError


def line(irq: int = 3, ipl: int = 2, name: str = "test") -> InterruptLine:
    return InterruptLine(irq=irq, name=name, ipl=ipl, handler=lambda: None)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_tick_advances(self):
        clock = SimClock()
        clock.tick(1500)
        assert clock.now_ns == 1500
        assert clock.now_us == 1

    def test_advance_to_absolute(self):
        clock = SimClock(start_ns=10)
        clock.advance_to(999)
        assert clock.now_ns == 999

    def test_negative_tick_rejected(self):
        with pytest.raises(TimeError):
            SimClock().tick(-1)

    def test_backwards_advance_rejected(self):
        clock = SimClock(start_ns=100)
        with pytest.raises(TimeError):
            clock.advance_to(50)

    def test_negative_start_rejected(self):
        with pytest.raises(TimeError):
            SimClock(start_ns=-5)

    @given(steps=st.lists(st.integers(min_value=0, max_value=10**9), max_size=50))
    def test_time_is_monotone(self, steps):
        clock = SimClock()
        previous = 0
        for step in steps:
            clock.tick(step)
            assert clock.now_ns >= previous
            previous = clock.now_ns
        assert clock.now_ns == sum(steps)


class TestInterruptQueue:
    def test_post_and_pop(self):
        q = InterruptQueue()
        ln = line()
        q.post(ln, due_ns=100)
        assert len(q) == 1
        popped = q.pop_due(now_ns=100, current_ipl=0)
        assert popped is not None and popped.line is ln
        assert len(q) == 0

    def test_not_due_yet(self):
        q = InterruptQueue()
        q.post(line(), due_ns=100)
        assert q.pop_due(now_ns=99, current_ipl=0) is None

    def test_masked_interrupt_stays_pending(self):
        q = InterruptQueue()
        ln = line(ipl=2)
        q.post(ln, due_ns=50)
        # CPU at ipl 2 masks lines with ipl <= 2.
        assert q.pop_due(now_ns=100, current_ipl=2) is None
        assert q.pending_for(ln) == 1
        # Lowering the level releases it.
        assert q.pop_due(now_ns=100, current_ipl=0).line is ln

    def test_earliest_deliverable_wins_over_masked(self):
        q = InterruptQueue()
        masked = line(irq=1, ipl=1, name="low")
        deliverable = line(irq=2, ipl=5, name="high")
        q.post(masked, due_ns=10)
        q.post(deliverable, due_ns=20)
        popped = q.pop_due(now_ns=100, current_ipl=1)
        assert popped.line is deliverable
        assert q.pending_for(masked) == 1

    def test_fifo_tiebreak_same_due_time(self):
        q = InterruptQueue()
        first = line(irq=1, name="first")
        second = line(irq=2, name="second")
        q.post(first, due_ns=10)
        q.post(second, due_ns=10)
        assert q.pop_due(100, 0).line is first
        assert q.pop_due(100, 0).line is second

    def test_next_due_respects_mask(self):
        q = InterruptQueue()
        q.post(line(ipl=1), due_ns=10)
        q.post(line(ipl=5), due_ns=30)
        assert q.next_due_ns(current_ipl=1) == 30
        assert q.next_due_ns(current_ipl=0) == 10
        assert q.next_any_due_ns() == 10

    def test_next_due_empty(self):
        q = InterruptQueue()
        assert q.next_due_ns() is None
        assert q.next_any_due_ns() is None

    def test_cancel_line(self):
        q = InterruptQueue()
        ln = line()
        other = line(irq=9, name="other")
        q.post(ln, 10)
        q.post(ln, 20)
        q.post(other, 30)
        assert q.cancel_line(ln) == 2
        assert len(q) == 1
        assert q.pop_due(100, 0).line is other

    def test_negative_due_rejected(self):
        with pytest.raises(TimeError):
            InterruptQueue().post(line(), due_ns=-1)

    @given(
        dues=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30
        )
    )
    def test_pop_order_is_time_sorted(self, dues):
        q = InterruptQueue()
        ln = line(ipl=5)
        for due in dues:
            q.post(ln, due)
        popped = []
        while True:
            entry = q.pop_due(now_ns=10_001, current_ipl=0)
            if entry is None:
                break
            popped.append(entry.due_ns)
        assert popped == sorted(dues)
