"""Unit tests for the profile corpus database (repro.db).

The contracts under test, in schema -> ingest -> query -> diff order:

* the schema version gate (fresh file initialised, drift refused);
* content-fingerprint idempotence: re-ingesting a corpus — in any
  order, under any paths — changes nothing and renders identically;
* selector resolution and deterministic query ordering;
* the statistical diff: pooled noise, the singleton fallback, the
  appeared/vanished rules, and the 0/1/2 exit-code gate;
* the P7xx integrity lint over mutated databases.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.db import (
    DiffThresholds,
    ProfileDbError,
    SCHEMA_VERSION,
    connect,
    diff_runs,
    discover_captures,
    function_row_count,
    ingest_capture,
    ingest_paths,
    list_runs,
    query_functions,
    render_diff_json,
    render_diff_text,
    render_query_text,
    render_runs_text,
    resolve_runs,
    run_count,
    workload_tag,
)
from repro.analysis.compare import WorkloadMismatchWarning
from repro.db.schema import read_schema_version
from repro.lint.db_lint import lint_profile_db
from repro.profiler.upload import write_capture_file

from stream_helpers import (
    build_regression_corpus,
    fleet_names,
    regression_records,
    synth_capture_records,
)


@pytest.fixture
def names():
    return fleet_names()


def write_run(path, index=0, events=48, label=None):
    write_capture_file(
        path,
        synth_capture_records(index, events),
        label=label if label is not None else f"cap-{index:04d}",
    )
    return path


class TestSchema:
    def test_fresh_file_initialised(self, tmp_path):
        conn = connect(tmp_path / "p.db")
        assert read_schema_version(conn) == SCHEMA_VERSION
        conn.close()

    def test_reopen_is_fine(self, tmp_path):
        connect(tmp_path / "p.db").close()
        conn = connect(tmp_path / "p.db")
        assert run_count(conn) == 0
        conn.close()

    def test_version_drift_refused(self, tmp_path):
        conn = connect(tmp_path / "p.db")
        with conn:
            conn.execute("UPDATE schema_version SET version = ?",
                         (SCHEMA_VERSION + 1,))
        conn.close()
        with pytest.raises(ProfileDbError, match="schema version"):
            connect(tmp_path / "p.db")

    def test_tables_without_version_row_is_drift(self, tmp_path):
        raw = sqlite3.connect(tmp_path / "p.db")
        raw.execute("CREATE TABLE runs (id INTEGER PRIMARY KEY)")
        raw.commit()
        assert read_schema_version(raw) == -1
        raw.close()
        with pytest.raises(ProfileDbError):
            connect(tmp_path / "p.db")

    def test_not_a_database(self, tmp_path):
        garbage = tmp_path / "p.db"
        garbage.write_bytes(b"not a sqlite file, not even close......")
        with pytest.raises(ProfileDbError, match="not a sqlite database"):
            connect(garbage)


class TestIngest:
    def test_single_capture(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        result = ingest_capture(
            conn, write_run(tmp_path / "a.mpf"), names
        )
        assert result.status == "added"
        assert result.label == "cap-0000"
        assert result.functions > 0 and result.records > 0
        assert run_count(conn) == 1
        assert function_row_count(conn) == result.functions
        conn.close()

    def test_reingest_is_a_noop(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        path = write_run(tmp_path / "a.mpf")
        first = ingest_capture(conn, path, names)
        rows_before = function_row_count(conn)
        again = ingest_capture(conn, path, names)
        assert again.status == "duplicate"
        assert again.fingerprint == first.fingerprint
        assert run_count(conn) == 1
        assert function_row_count(conn) == rows_before
        conn.close()

    def test_same_bytes_under_two_paths_is_one_run(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        a = write_run(tmp_path / "a.mpf")
        b = tmp_path / "copy.mpf"
        b.write_bytes(a.read_bytes())
        assert ingest_capture(conn, a, names).status == "added"
        assert ingest_capture(conn, b, names).status == "duplicate"
        assert run_count(conn) == 1
        conn.close()

    def test_garbage_fails_cleanly(self, tmp_path, names):
        garbage = tmp_path / "bad.mpf"
        garbage.write_bytes(b"\x00" * 64)
        conn = connect(tmp_path / "p.db")
        result = ingest_capture(conn, garbage, names)
        assert result.status == "failed"
        assert result.error
        assert run_count(conn) == 0
        conn.close()

    def test_missing_file_fails_cleanly(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        result = ingest_capture(conn, tmp_path / "absent.mpf", names)
        assert result.status == "failed" and not result.ok
        conn.close()

    def test_workload_override(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        result = ingest_capture(
            conn, write_run(tmp_path / "a.mpf"), names, workload="special"
        )
        assert result.workload == "special"
        assert list_runs(conn)[0].workload == "special"
        conn.close()

    def test_workload_tag_parsing(self):
        assert workload_tag("cli: network") == "network"
        assert workload_tag("") == "<unlabeled>"
        assert workload_tag("hand-rolled") == "hand-rolled"

    def test_ingest_paths_empty_raises(self, tmp_path, names):
        (tmp_path / "empty").mkdir()
        conn = connect(tmp_path / "p.db")
        with pytest.raises(ProfileDbError, match="no capture files"):
            ingest_paths(conn, [tmp_path / "empty"], names)
        conn.close()

    def test_discover_dedups_and_sorts(self, tmp_path):
        a = write_run(tmp_path / "b.mpf", index=1)
        b = write_run(tmp_path / "a.mpf", index=2)
        found = discover_captures([tmp_path, a, b])
        assert found == sorted({str(a), str(b)})


class TestDeterminism:
    """Same corpus -> byte-identical reports, whatever the ingest order."""

    def _render_all(self, conn) -> str:
        runs = render_runs_text(list_runs(conn))
        rows = render_query_text(query_functions(conn, sort="net"))
        report = diff_runs(conn, "before", "after")
        return "\n".join([
            runs, rows, render_diff_text(report), render_diff_json(report),
        ])

    def test_ingest_order_invariance(self, tmp_path, names):
        corpus = tmp_path / "corpus"
        build_regression_corpus(corpus, label="before", runs=3, spin_us=100)
        build_regression_corpus(corpus, label="after", runs=3, spin_us=300)
        captures = discover_captures([corpus])
        renders = []
        for order in (captures, list(reversed(captures))):
            db = tmp_path / f"order_{len(renders)}.db"
            conn = connect(db)
            for capture in order:
                assert ingest_capture(
                    conn, capture, names, workload="regress"
                ).ok
            renders.append(self._render_all(conn))
            conn.close()
        assert renders[0] == renders[1]


class TestQuery:
    @pytest.fixture
    def conn(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        for index in range(3):
            ingest_capture(
                conn, write_run(tmp_path / f"c{index}.mpf", index=index), names
            )
        yield conn
        conn.close()

    def test_list_runs_ordered_by_fingerprint(self, conn):
        runs = list_runs(conn)
        assert len(runs) == 3
        assert [r.fingerprint for r in runs] == sorted(r.fingerprint for r in runs)

    def test_label_filter(self, conn):
        runs = list_runs(conn, label="cap-0001")
        assert len(runs) == 1 and runs[0].label == "cap-0001"

    def test_sort_orders(self, conn):
        by_net = query_functions(conn, sort="net")
        assert [r.net_us for r in by_net] == sorted(
            (r.net_us for r in by_net), reverse=True
        )
        by_name = query_functions(conn, sort="name")
        assert [r.name for r in by_name] == sorted(r.name for r in by_name)

    def test_glob_and_floor_and_limit(self, conn):
        spins = query_functions(conn, function="sp*")
        assert spins and all(r.name == "spin" for r in spins)
        floor = query_functions(conn, min_pct_net=101.0)
        assert floor == []
        assert len(query_functions(conn, limit=2)) == 2

    def test_unknown_sort_raises(self, conn):
        with pytest.raises(ProfileDbError, match="unknown sort"):
            query_functions(conn, sort="bogus")

    def test_resolve_by_prefix_label_workload(self, conn):
        run = list_runs(conn)[0]
        assert resolve_runs(conn, run.fingerprint[:8]) == [run]
        assert resolve_runs(conn, f"run:{run.fingerprint[:8]}") == [run]
        assert resolve_runs(conn, "label:cap-0002")[0].label == "cap-0002"
        by_workload = resolve_runs(conn, "workload:cap-0000")
        assert len(by_workload) == 1

    def test_resolve_unknown_raises(self, conn):
        with pytest.raises(ProfileDbError, match="no run matches"):
            resolve_runs(conn, "nonesuch")


class TestDiff:
    def _corpus_db(self, tmp_path, before_spin, after_spin, runs=3):
        corpus = tmp_path / "corpus"
        names = build_regression_corpus(
            corpus, label="before", runs=runs, spin_us=before_spin
        )
        build_regression_corpus(
            corpus, label="after", runs=runs, spin_us=after_spin
        )
        conn = connect(tmp_path / "p.db")
        # One workload ran both sides (the real before/after shape);
        # synthetic labels are not registry labels, so say so explicitly.
        ingest_paths(conn, [corpus], names, workload="regress")
        return conn

    def test_no_change_is_exit_0(self, tmp_path):
        conn = self._corpus_db(tmp_path, 100, 100)
        report = diff_runs(conn, "before", "after")
        assert report.exit_code == 0
        assert not report.regressions
        assert "no movement beyond noise" in render_diff_text(report)
        conn.close()

    def test_seeded_regression_is_exit_2(self, tmp_path):
        conn = self._corpus_db(tmp_path, 100, 300)
        report = diff_runs(conn, "before", "after")
        assert report.exit_code == 2
        slow = [v.name for v in report.regressions]
        assert slow == ["spin"]
        spin = report.regressions[0]
        assert spin.zscore is not None and spin.zscore >= 3.0
        assert "REGRESSION" in render_diff_text(report)
        conn.close()

    def test_improvement_is_exit_1(self, tmp_path):
        conn = self._corpus_db(tmp_path, 300, 100)
        report = diff_runs(conn, "before", "after")
        assert report.exit_code == 1
        assert [v.name for v in report.movements] == ["spin"]
        conn.close()

    def test_direction_matters(self, tmp_path):
        """The same corpus diffed the other way flips 2 <-> 1."""
        conn = self._corpus_db(tmp_path, 100, 300)
        assert diff_runs(conn, "before", "after").exit_code == 2
        assert diff_runs(conn, "after", "before").exit_code == 1
        conn.close()

    def test_singleton_fallback(self, tmp_path):
        conn = self._corpus_db(tmp_path, 100, 300, runs=1)
        report = diff_runs(conn, "before", "after")
        spin = report.regressions[0]
        assert spin.zscore is None  # no noise estimate on singletons
        assert spin.rel_change is not None
        assert report.exit_code == 2
        conn.close()

    def test_small_jitter_below_floor_is_quiet(self, tmp_path):
        # 100 vs 104 us x 4 calls: 16 us mean delta, under min_abs_us.
        conn = self._corpus_db(tmp_path, 100, 104)
        report = diff_runs(conn, "before", "after")
        assert report.exit_code == 0
        conn.close()

    def test_overlapping_selectors_refused(self, tmp_path):
        conn = self._corpus_db(tmp_path, 100, 100)
        fingerprint = list_runs(conn)[0].fingerprint
        with pytest.raises(ProfileDbError, match="disjoint"):
            diff_runs(conn, fingerprint[:12], fingerprint[:12])
        conn.close()

    def test_appeared_hot_function_is_exit_2(self, tmp_path, names):
        from repro.profiler.ram import RawRecord

        conn = connect(tmp_path / "p.db")
        base = regression_records(0, spin_us=100)
        # Candidate timeline never calls spin at all (its own clock, so
        # spin's time is absent rather than absorbed into main's net).
        main, work = names.by_name("main"), names.by_name("work")
        stripped, t = [RawRecord(tag=main.entry_value, time=0)], 0
        for _ in range(4):
            t += 10
            stripped.append(RawRecord(tag=work.entry_value, time=t))
            t += 100
            stripped.append(RawRecord(tag=work.exit_value, time=t))
        stripped.append(RawRecord(tag=main.exit_value, time=t + 10))
        write_capture_file(tmp_path / "with.mpf", base, label="with")
        write_capture_file(tmp_path / "without.mpf", stripped, label="without")
        ingest_paths(conn, [tmp_path], names, workload="regress")
        report = diff_runs(conn, "without", "with")
        appeared = {v.name: v for v in report.verdicts if v.status == "appeared"}
        assert "spin" in appeared and appeared["spin"].confirmed
        assert report.exit_code == 2
        reverse = diff_runs(conn, "with", "without")
        vanished = {v.name for v in reverse.verdicts if v.status == "vanished"}
        assert "spin" in vanished
        assert reverse.exit_code == 1
        conn.close()

    def test_workload_mismatch_flagged(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        write_capture_file(
            tmp_path / "a.mpf", regression_records(0, spin_us=100), label="a"
        )
        write_capture_file(
            tmp_path / "b.mpf", regression_records(1, spin_us=100), label="b"
        )
        ingest_capture(conn, tmp_path / "a.mpf", names, workload="netw")
        ingest_capture(conn, tmp_path / "b.mpf", names, workload="fork")
        with pytest.warns(WorkloadMismatchWarning):
            report = diff_runs(conn, "netw", "fork")
        assert report.workload_mismatch
        assert "different workloads" in render_diff_text(report)
        assert json.loads(render_diff_json(report))["workload_mismatch"]
        conn.close()

    def test_json_report_is_strict_json(self, tmp_path):
        conn = self._corpus_db(tmp_path, 100, 300)
        report = diff_runs(conn, "before", "after")
        document = json.loads(render_diff_json(report))
        json.dumps(document, allow_nan=False)  # no bare Infinity anywhere
        assert document["exit_code"] == 2
        assert document["functions"][0]["name"] == "spin"
        assert document["functions"][0]["verdict"] == "regression"
        conn.close()

    def test_thresholds_are_knobs(self, tmp_path):
        conn = self._corpus_db(tmp_path, 100, 300)
        lax = DiffThresholds(singleton_rel=0.2, min_rel=0.05,
                             sigma=3.0, min_abs_us=10_000_000)
        report = diff_runs(conn, "before", "after", thresholds=lax)
        assert report.exit_code == 0  # absolute floor silences everything
        conn.close()


class TestDbLint:
    def _db_with_corpus(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        for index in range(2):
            ingest_capture(
                conn,
                write_run(tmp_path / f"c{index}.mpf", index=index, label="same"),
                names,
            )
        return conn

    def test_clean_db_single_label_info_only(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        ingest_capture(conn, write_run(tmp_path / "a.mpf"), names)
        conn.close()
        report = lint_profile_db(tmp_path / "p.db")
        assert report.codes() == ("P705",)
        assert report.ok

    def test_empty_file_is_p701(self, tmp_path):
        (tmp_path / "p.db").touch()
        report = lint_profile_db(tmp_path / "p.db")
        assert "P701" in report.codes() and not report.ok

    def test_version_drift_is_p701(self, tmp_path, names):
        conn = self._db_with_corpus(tmp_path, names)
        with conn:
            conn.execute("UPDATE schema_version SET version = 99")
        conn.close()
        report = lint_profile_db(tmp_path / "p.db")
        assert report.codes() == ("P701",)

    def test_orphan_function_rows_are_p702(self, tmp_path, names):
        conn = self._db_with_corpus(tmp_path, names)
        with conn:
            conn.execute("PRAGMA foreign_keys = OFF")
            conn.execute(
                "INSERT INTO functions VALUES (999, 'ghost', 1, 1, 1, 1, 1,"
                " 0.0, 0.0)"
            )
        conn.close()
        report = lint_profile_db(tmp_path / "p.db")
        assert "P702" in report.codes() and not report.ok

    def test_label_across_workloads_is_p703(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        ingest_capture(
            conn, write_run(tmp_path / "a.mpf", index=0, label="same"),
            names, workload="one",
        )
        ingest_capture(
            conn, write_run(tmp_path / "b.mpf", index=1, label="same"),
            names, workload="two",
        )
        conn.close()
        report = lint_profile_db(tmp_path / "p.db")
        assert "P703" in report.codes()
        assert report.ok  # warning severity

    def test_run_without_functions_is_p704(self, tmp_path, names):
        conn = self._db_with_corpus(tmp_path, names)
        with conn:
            run_id = conn.execute("SELECT MIN(id) FROM runs").fetchone()[0]
            conn.execute("DELETE FROM functions WHERE run_id = ?", (run_id,))
        conn.close()
        report = lint_profile_db(tmp_path / "p.db")
        assert "P704" in report.codes()

    def test_singleton_labels_are_p705(self, tmp_path, names):
        conn = connect(tmp_path / "p.db")
        ingest_capture(
            conn, write_run(tmp_path / "a.mpf", index=0, label="lonely"), names
        )
        conn.close()
        report = lint_profile_db(tmp_path / "p.db")
        assert report.codes() == ("P705",)

    def test_pooled_labels_are_quiet(self, tmp_path, names):
        conn = self._db_with_corpus(tmp_path, names)  # two runs, one label
        conn.close()
        report = lint_profile_db(tmp_path / "p.db")
        assert len(report) == 0
