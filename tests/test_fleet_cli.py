"""CLI surface of the fleet engine: ``repro fleet ingest`` / ``serve``.

Serve-mode tests drive a real subprocess — ephemeral-port discovery, a
live ``/metrics`` scrape, and the SIGINT drain contract (exit 0 with a
final merged summary, never a hang) only mean anything across a process
boundary.  Timeouts are generous for single-core CI boxes.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.__main__ import main

from stream_helpers import build_fleet_corpus

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REPO_SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


def run_cli_code(*argv: str) -> tuple[int, list[str]]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, lines


def write_names(tmp_path: pathlib.Path) -> str:
    names = build_fleet_corpus(tmp_path / "unused", captures=0)
    path = tmp_path / "fleet.tags"
    names.write(path)
    return str(path)


class TestFleetIngestCommand:
    def test_jobs_one_and_two_byte_identical(self, tmp_path):
        corpus = tmp_path / "corpus"
        build_fleet_corpus(corpus, captures=6, events=48)
        names = write_names(tmp_path)
        code1, lines1 = run_cli_code(
            "fleet", "ingest", str(corpus), "--names", names, "--jobs", "1"
        )
        code2, lines2 = run_cli_code(
            "fleet", "ingest", str(corpus), "--names", names, "--jobs", "2"
        )
        assert code1 == 0 and code2 == 0
        assert lines1 == lines2

    def test_manifest_is_deterministic(self, tmp_path):
        corpus = tmp_path / "corpus"
        build_fleet_corpus(corpus, captures=4, events=32)
        names = write_names(tmp_path)
        manifests = []
        for jobs in ("1", "2"):
            out = tmp_path / f"manifest_{jobs}.json"
            code, _ = run_cli_code(
                "fleet", "ingest", str(corpus), "--names", names,
                "--jobs", jobs, "--manifest", str(out),
            )
            assert code == 0
            manifests.append(out.read_text())
        assert manifests[0] == manifests[1]
        rows = json.loads(manifests[0])
        assert [row["index"] for row in rows] == list(range(4))
        assert all(row["status"] == "ok" for row in rows)
        assert all("elapsed_us" not in row for row in rows)

    def test_empty_root_exits_2(self, tmp_path):
        (tmp_path / "empty").mkdir()
        names = write_names(tmp_path)
        code, lines = run_cli_code(
            "fleet", "ingest", str(tmp_path / "empty"), "--names", names
        )
        assert code == 2
        assert any("P501" in line for line in lines)

    def test_missing_root_exits_2_with_p506(self, tmp_path):
        names = write_names(tmp_path)
        code, lines = run_cli_code(
            "fleet", "ingest", str(tmp_path / "nope"), "--names", names
        )
        assert code == 2
        assert any("P506" in line for line in lines)

    def test_failed_capture_exits_1_without_salvage(self, tmp_path):
        corpus = tmp_path / "corpus"
        build_fleet_corpus(corpus, captures=2, events=32)
        (corpus / "broken.mpf").write_bytes(b"MPF2 but then lies")
        names = write_names(tmp_path)
        code, lines = run_cli_code(
            "fleet", "ingest", str(corpus), "--names", names, "--jobs", "1"
        )
        assert code == 1
        assert any("P502" in line for line in lines)

    @pytest.mark.skipif(
        not list(GOLDEN_DIR.glob("*.mpf.corrupt")),
        reason="corrupt goldens not checked in",
    )
    def test_salvage_recovers_and_exits_0(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        for source in ("figure3_network_v2.mpf", "figure5_forkexec_v2.mpf"):
            shutil.copy(GOLDEN_DIR / source, corpus / source)
        corrupt = sorted(GOLDEN_DIR.glob("*.mpf.corrupt"))[0]
        shutil.copy(corrupt, corpus / corrupt.name)
        tags = str(GOLDEN_DIR / "case_study.tags")
        code, lines = run_cli_code(
            "fleet", "ingest", str(corpus), "--names", tags,
            "--jobs", "2", "--salvage",
        )
        assert code == 0
        text = "\n".join(lines)
        assert "P505" in text and "salvaged=1" in text


def _spawn_serve(corpus, names, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fleet", "serve", str(corpus),
            "--names", str(names), "--jobs", "1", "--poll", "0.2", *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def _wait_for_port(process, deadline_s: float = 30.0) -> int:
    """Read stderr until the serve banner names its ephemeral port."""
    start = time.monotonic()
    banner = ""
    while time.monotonic() - start < deadline_s:
        line = process.stderr.readline()
        if not line:
            if process.poll() is not None:
                break
            time.sleep(0.05)
            continue
        banner += line
        match = re.search(r"http://127\.0\.0\.1:(\d+)/metrics", line)
        if match:
            return int(match.group(1))
    raise AssertionError(f"serve never published its port; stderr: {banner}")


class TestFleetServeCommand:
    def test_scrape_then_max_polls_exit(self, tmp_path):
        corpus = tmp_path / "corpus"
        build_fleet_corpus(corpus, captures=3, events=32)
        names = write_names(tmp_path)
        process = _spawn_serve(corpus, names, "--max-polls", "40")
        try:
            port = _wait_for_port(process)
            body = ""
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                body = urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=10
                ).read().decode()
                if "fleet_captures_ingested 3" in body:
                    break
                time.sleep(0.2)
            assert "fleet_captures_ingested 3" in body
            assert "fleet_records_decoded" in body
            stdout, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "fleet serve: 3 capture(s)" in stdout

    def test_sigint_drains_and_exits_0(self, tmp_path):
        corpus = tmp_path / "corpus"
        build_fleet_corpus(corpus, captures=2, events=32)
        names = write_names(tmp_path)
        process = _spawn_serve(corpus, names)  # no --max-polls: runs forever
        try:
            _wait_for_port(process)
            time.sleep(1.5)  # let the first poll ingest the corpus
            process.send_signal(signal.SIGINT)
            stdout, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, "SIGINT must exit 0, not hang or die"
        assert "fleet serve: 2 capture(s)" in stdout
        assert "Elapsed time" in stdout  # the final merged summary printed
