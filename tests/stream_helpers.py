"""Synthetic event-stream builders shared across the test suite."""

from __future__ import annotations

from repro.instrument.namefile import NameTable
from repro.instrument.tags import TagEntry
from repro.profiler.capture import Capture
from repro.profiler.ram import RawRecord

TIME_MASK = (1 << 24) - 1


def make_names(*specs: tuple) -> NameTable:
    """Build a name table from ``(name, value[, modifier])`` tuples.

    Modifier ``"!"`` marks a context switch, ``"="`` an inline tag.
    """
    table = NameTable()
    for spec in specs:
        name, value = spec[0], spec[1]
        modifier = spec[2] if len(spec) > 2 else ""
        table.add(
            TagEntry(
                name=name,
                value=value,
                context_switch="!" in modifier,
                inline="=" in modifier,
            )
        )
    return table


def stream(names: NameTable, *steps: tuple[str, str, int]) -> Capture:
    """Build a capture from ``(op, name, time_us)`` steps.

    ``op`` is ``">"`` (entry), ``"<"`` (exit) or ``"="`` (inline).  Times
    are absolute microseconds; the builder wraps them into the 24-bit
    counter exactly as the hardware would.
    """
    records = []
    for op, name, time_us in steps:
        entry = names.by_name(name)
        if op == ">":
            tag = entry.entry_value
        elif op == "<":
            tag = entry.exit_value
        elif op == "=":
            tag = entry.entry_value
        else:
            raise ValueError(f"bad op {op!r}")
        records.append(RawRecord(tag=tag, time=time_us & TIME_MASK))
    return Capture(records=tuple(records), names=names, label="synthetic")


