"""Synthetic event-stream builders shared across the test suite."""

from __future__ import annotations

from pathlib import Path

from repro.instrument.namefile import NameTable
from repro.instrument.tags import TagEntry
from repro.profiler.capture import Capture
from repro.profiler.ram import RawRecord
from repro.profiler.upload import write_capture_file

TIME_MASK = (1 << 24) - 1


def make_names(*specs: tuple) -> NameTable:
    """Build a name table from ``(name, value[, modifier])`` tuples.

    Modifier ``"!"`` marks a context switch, ``"="`` an inline tag.
    """
    table = NameTable()
    for spec in specs:
        name, value = spec[0], spec[1]
        modifier = spec[2] if len(spec) > 2 else ""
        table.add(
            TagEntry(
                name=name,
                value=value,
                context_switch="!" in modifier,
                inline="=" in modifier,
            )
        )
    return table


def stream(names: NameTable, *steps: tuple[str, str, int]) -> Capture:
    """Build a capture from ``(op, name, time_us)`` steps.

    ``op`` is ``">"`` (entry), ``"<"`` (exit) or ``"="`` (inline).  Times
    are absolute microseconds; the builder wraps them into the 24-bit
    counter exactly as the hardware would.
    """
    records = []
    for op, name, time_us in steps:
        entry = names.by_name(name)
        if op == ">":
            tag = entry.entry_value
        elif op == "<":
            tag = entry.exit_value
        elif op == "=":
            tag = entry.entry_value
        else:
            raise ValueError(f"bad op {op!r}")
        records.append(RawRecord(tag=tag, time=time_us & TIME_MASK))
    return Capture(records=tuple(records), names=names, label="synthetic")


def fleet_names() -> NameTable:
    """The standard name table the fleet corpus builders decode with."""
    return make_names(
        ("main", 500),
        ("work", 502),
        ("spin", 506),
        ("swtch", 504, "!"),
    )


def synth_capture_records(index: int, events: int) -> list[RawRecord]:
    """Deterministic records for synthetic fleet capture *index*.

    A ``main`` frame wrapping ``events//2 - 1`` alternating ``work`` /
    ``spin`` calls, with per-capture time steps so no two captures in a
    corpus summarise identically — a merge-order bug cannot hide behind
    identical shards.  Pure function of ``(index, events)``.
    """
    names = fleet_names()
    main = names.by_name("main")
    inner = [names.by_name("work"), names.by_name("spin")]
    step = 7 + (index % 5)
    t = (index * 9973) & TIME_MASK
    records = [RawRecord(tag=main.entry_value, time=t)]
    calls = max(1, events // 2 - 1)
    for call in range(calls):
        entry = inner[call % 2]
        t = (t + step) & TIME_MASK
        records.append(RawRecord(tag=entry.entry_value, time=t))
        t = (t + step + (call % 3)) & TIME_MASK
        records.append(RawRecord(tag=entry.exit_value, time=t))
    t = (t + step) & TIME_MASK
    records.append(RawRecord(tag=main.exit_value, time=t))
    return records


def regression_records(
    run: int, *, spin_us: int, calls: int = 4
) -> list[RawRecord]:
    """Records for one run of the db-diff regression substrate.

    ``main`` wraps *calls* alternating ``work``/``spin`` pairs; ``work``
    always costs ~100 µs, ``spin`` costs *spin_us* — the seeded-slowdown
    knob.  Per-run jitter of a few µs (deterministic in *run*) gives a
    pool of repeated runs a real, small noise estimate, so raising
    ``spin_us`` on one side is movement far beyond noise while every
    other function stays inside it.
    """
    names = fleet_names()
    main = names.by_name("main")
    work = names.by_name("work")
    spin = names.by_name("spin")
    jitter = run % 3  # 0/1/2 us: nonzero sample std across >= 3 runs
    t = 0
    records = [RawRecord(tag=main.entry_value, time=t)]
    for _ in range(calls):
        t += 10
        records.append(RawRecord(tag=work.entry_value, time=t & TIME_MASK))
        t += 100 + jitter
        records.append(RawRecord(tag=work.exit_value, time=t & TIME_MASK))
        t += 10
        records.append(RawRecord(tag=spin.entry_value, time=t & TIME_MASK))
        t += spin_us + jitter
        records.append(RawRecord(tag=spin.exit_value, time=t & TIME_MASK))
    t += 10
    records.append(RawRecord(tag=main.exit_value, time=t & TIME_MASK))
    return records


def build_regression_corpus(
    root: Path, *, label: str, runs: int, spin_us: int
) -> NameTable:
    """Write *runs* repeat captures of one workload state under *root*.

    All captures carry the same *label*, so ``repro db diff`` pools them
    into one side's noise estimate; returns the name table to decode
    with.  Baseline and candidate corpora differ only in ``spin_us``.
    """
    root.mkdir(parents=True, exist_ok=True)
    for run in range(runs):
        write_capture_file(
            root / f"{label}_{run:02d}.mpf",
            regression_records(run, spin_us=spin_us),
            label=label,
        )
    return fleet_names()


def build_fleet_corpus(
    root: Path, captures: int, events: int = 64
) -> NameTable:
    """Write a synthetic MPF2 corpus under *root*; returns its names.

    Files are ``cap_0000.mpf`` … so lexical order equals build order,
    which keeps fleet plans (path-sorted) easy to reason about in tests
    and benchmarks.
    """
    root.mkdir(parents=True, exist_ok=True)
    for index in range(captures):
        write_capture_file(
            root / f"cap_{index:04d}.mpf",
            synth_capture_records(index, events),
            label=f"cap-{index:04d}",
        )
    return fleet_names()


