"""Tests for mbufs, the checksum, and the header codecs (with hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.kernel.kernel import Kernel
from repro.kernel.net.headers import (
    EtherHeader,
    IpHeader,
    TcpHeader,
    UdpHeader,
    build_tcp_frame,
    build_udp_frame,
    cksum_bytes,
    cksum_fold,
    internet_checksum,
    pseudo_header,
    IPPROTO_TCP,
    TH_ACK,
)
from repro.kernel.net.in_cksum import in_cksum
from repro.kernel.net.mbuf import (
    MCLBYTES,
    MHLEN,
    Mbuf,
    m_adj,
    m_copydata_bytes,
    m_devget,
    m_free,
    m_freem,
    m_get,
    m_getclust,
    m_length,
    m_prepend,
    m_pullup,
)
from repro.sim.bus import Region


def kernel() -> Kernel:
    return Kernel()


def chain_from(k: Kernel, *segments: bytes) -> Mbuf:
    head = None
    tail = None
    for segment in segments:
        m = m_getclust(k)
        m.data = segment
        if head is None:
            head = m
        else:
            tail.m_next = m
        tail = m
    assert head is not None
    return head


class TestMbufs:
    def test_devget_chunks_header_plus_clusters(self):
        k = kernel()
        frame = bytes(range(256)) * 6  # 1536 bytes
        chain = m_devget(k, frame)
        segments = list(chain.chain())
        assert segments[0].pkthdr and segments[0].m_len == MHLEN
        assert all(seg.cluster for seg in segments[1:])
        assert all(seg.m_len <= MCLBYTES for seg in segments)
        assert m_copydata_bytes(chain) == frame

    def test_pullup_merges_prefix(self):
        k = kernel()
        chain = chain_from(k, b"ab", b"cdef", b"gh")
        m_pullup(k, chain, 5)
        assert chain.m_len >= 5
        assert m_copydata_bytes(chain) == b"abcdefgh"

    def test_pullup_beyond_chain_raises(self):
        k = kernel()
        chain = chain_from(k, b"ab")
        with pytest.raises(ValueError):
            m_pullup(k, chain, 10)

    def test_adj_front_and_back(self):
        k = kernel()
        chain = chain_from(k, b"abcd", b"efgh")
        m_adj(k, chain, 2)
        assert m_copydata_bytes(chain) == b"cdefgh"
        m_adj(k, chain, -3)
        assert m_copydata_bytes(chain) == b"cde"

    def test_adj_too_much_raises(self):
        k = kernel()
        chain = chain_from(k, b"ab")
        with pytest.raises(ValueError):
            m_adj(k, chain, 5)

    def test_free_returns_successor(self):
        k = kernel()
        chain = chain_from(k, b"a", b"b")
        second = chain.m_next
        assert m_free(k, chain) is second

    def test_freem_clears_chain(self):
        k = kernel()
        chain = chain_from(k, b"a", b"b", b"c")
        m_freem(k, chain)
        assert k.stats["mbufs_freed"] == 3

    def test_prepend(self):
        k = kernel()
        chain = chain_from(k, b"data")
        head = m_prepend(k, chain, 14)
        assert head.m_len == 14
        assert m_length(head) == 18

    def test_mget_fires_inline_trigger(self):
        from repro.profiler.eprom import PiggyBackAdapter
        from repro.profiler.hardware import ProfilerBoard

        k = kernel()
        board = ProfilerBoard()
        k.attach_profiler(PiggyBackAdapter(board))
        k.set_profile_map({}, {"MGET": 1002})
        board.arm()
        m_get(k)
        assert any(record.tag == 1002 for record in board.ram)

    @given(
        payload=st.binary(min_size=0, max_size=4000),
        trim_front=st.integers(min_value=0, max_value=100),
    )
    def test_devget_adj_preserve_bytes(self, payload, trim_front):
        """Property: chopping a frame into mbufs and trimming keeps the
        byte stream identical to the equivalent bytes operations."""
        if len(payload) < 60:
            payload = payload + bytes(60 - len(payload))
        trim = min(trim_front, len(payload))
        k = kernel()
        chain = m_devget(k, payload)
        m_adj(k, chain, trim)
        assert m_copydata_bytes(chain) == payload[trim:]


class TestChecksumMath:
    def test_known_vector(self):
        """RFC 1071's worked example."""
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert cksum_fold(cksum_bytes(data)) == (~0xDDF2) & 0xFFFF

    def test_verifies_to_zero(self):
        """A packet carrying its own checksum sums to zero."""
        header = IpHeader(
            total_len=40, ident=1, ttl=64, proto=6, src=0x0A000001, dst=0x0A000002
        )
        packed = header.pack()
        assert internet_checksum(packed) == 0

    @given(data=st.binary(min_size=0, max_size=2000))
    def test_checksummed_data_verifies(self, data):
        """Property: append the checksum, and the whole verifies to 0."""
        value = internet_checksum(data)
        whole = data + value.to_bytes(2, "big")
        if len(data) % 2:
            # Odd data: the trailing checksum is not 16-bit aligned; pad
            # first, as every real protocol does.
            whole = data + b"\x00" + value.to_bytes(2, "big")
            value = internet_checksum(data + b"\x00")
            whole = data + b"\x00" + value.to_bytes(2, "big")
        assert internet_checksum(whole) == 0

    @given(
        data=st.binary(min_size=2, max_size=800),
        flip=st.integers(min_value=0, max_value=10_000),
    )
    def test_corruption_detected(self, data, flip):
        """Property: any single-bit flip changes the checksum, except
        between 0x0000 and 0xFFFF aliasing words (ones-complement)."""
        index = flip % len(data)
        bit = 1 << (flip % 8)
        corrupted = bytearray(data)
        corrupted[index] ^= bit
        original = internet_checksum(data)
        mutated = internet_checksum(bytes(corrupted))
        # Ones-complement arithmetic: a flip that turns a 0x0000 word into
        # 0xFFFF (or back) is invisible.  Exclude that known alias.
        word_index = (index // 2) * 2
        word_before = data[word_index : word_index + 2]
        word_after = bytes(corrupted[word_index : word_index + 2])
        aliases = {b"\x00\x00", b"\xff\xff"}
        if not (word_before in aliases and word_after in aliases):
            assert original != mutated


class TestInCksum:
    def test_matches_reference_over_chain(self):
        k = kernel()
        data = bytes(range(200)) * 3
        chain = chain_from(k, data[:77], data[77:300], data[300:])
        assert in_cksum(k, chain) == internet_checksum(data)

    @given(
        data=st.binary(min_size=1, max_size=1200),
        cut1=st.integers(min_value=0, max_value=1200),
        cut2=st.integers(min_value=0, max_value=1200),
    )
    def test_chain_split_invariance(self, data, cut1, cut2):
        """Property: the checksum does not depend on where mbuf boundaries
        fall — including odd-length middle segments, the classic bug."""
        a, b = sorted((min(cut1, len(data)), min(cut2, len(data))))
        segments = [s for s in (data[:a], data[a:b], data[b:]) if s]
        if not segments:
            segments = [data]
        k = kernel()
        chain = chain_from(k, *segments)
        assert in_cksum(k, chain) == internet_checksum(data)

    def test_partial_length(self):
        k = kernel()
        data = bytes(range(100))
        chain = chain_from(k, data[:30], data[30:])
        assert in_cksum(k, chain, 40) == internet_checksum(data[:40])

    def test_length_beyond_chain_raises(self):
        k = kernel()
        chain = chain_from(k, b"abc")
        with pytest.raises(ValueError):
            in_cksum(k, chain, 10)

    def test_cost_calibration_1kb(self):
        """Paper: ~843 us to checksum 1 KB with the stock C routine
        (modelled ~9% low; see CostModel)."""
        k = kernel()
        chain = chain_from(k, bytes(1024))
        before = k.machine.now_ns
        in_cksum(k, chain)
        us = (k.machine.now_ns - before) / 1_000
        assert 700 <= us <= 900

    def test_asm_recode_counterfactual(self):
        k = kernel()
        k.cost.asm_cksum = True
        chain = chain_from(k, bytes(1024))
        before = k.machine.now_ns
        in_cksum(k, chain)
        us = (k.machine.now_ns - before) / 1_000
        assert us <= 120

    def test_isa_resident_data_pays_bus_penalty(self):
        """The paper's "checksumming in controller memory" analysis."""
        k = kernel()
        main_chain = chain_from(k, bytes(1024))
        before = k.machine.now_ns
        in_cksum(k, main_chain)
        main_us = (k.machine.now_ns - before) / 1_000
        isa_chain = chain_from(k, bytes(1024))
        for seg in isa_chain.chain():
            seg.region = Region.ISA8
        before = k.machine.now_ns
        in_cksum(k, isa_chain)
        isa_us = (k.machine.now_ns - before) / 1_000
        assert isa_us - main_us >= 600  # ~700 us extra for 1 KB


class TestHeaderCodecs:
    def test_ether_roundtrip(self):
        header = EtherHeader(dst=b"\x01" * 6, src=b"\x02" * 6)
        assert EtherHeader.unpack(header.pack()) == header

    def test_ip_roundtrip_and_verify(self):
        header = IpHeader(
            total_len=576, ident=42, ttl=64, proto=17, src=1, dst=2
        )
        packed = header.pack()
        parsed = IpHeader.unpack(packed)
        assert parsed.total_len == 576 and parsed.proto == 17
        assert parsed.verify(packed)
        assert not parsed.verify(b"\x45" + packed[1:10] + b"\xde\xad" + packed[12:])

    def test_short_headers_rejected(self):
        with pytest.raises(ValueError):
            IpHeader.unpack(b"\x45" * 10)
        with pytest.raises(ValueError):
            TcpHeader.unpack(b"\x00" * 10)
        with pytest.raises(ValueError):
            UdpHeader.unpack(b"\x00" * 4)
        with pytest.raises(ValueError):
            EtherHeader.unpack(b"\x00" * 4)

    @given(
        sport=st.integers(min_value=0, max_value=0xFFFF),
        dport=st.integers(min_value=0, max_value=0xFFFF),
        seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
        payload=st.binary(max_size=400),
    )
    def test_tcp_checksum_verifies(self, sport, dport, seq, payload):
        """Property: a built segment passes pseudo-header verification."""
        src, dst = 0x0A000002, 0x0A000001
        segment = TcpHeader(
            sport=sport, dport=dport, seq=seq, ack=0, flags=TH_ACK
        ).pack_with_checksum(src, dst, payload)
        total = segment + payload
        pseudo = pseudo_header(src, dst, IPPROTO_TCP, len(total))
        data = pseudo + total
        if len(data) % 2:
            data += b"\x00"
        assert internet_checksum(data) == 0

    def test_built_frames_parse_back(self):
        frame = build_tcp_frame(
            src=0x0A000002,
            dst=0x0A000001,
            sport=1234,
            dport=4000,
            seq=100,
            ack=50,
            flags=TH_ACK,
            payload=b"hello world",
        )
        assert len(frame) >= 60
        ip = IpHeader.unpack(frame[14:34])
        assert ip.verify(frame[14:34])
        th = TcpHeader.unpack(frame[34:54])
        assert th.sport == 1234 and th.seq == 100

    def test_udp_frame_checksum_optional(self):
        without = build_udp_frame(
            src=1, dst=2, sport=10, dport=20, payload=b"x" * 10
        )
        with_ck = build_udp_frame(
            src=1, dst=2, sport=10, dport=20, payload=b"x" * 10, with_checksum=True
        )
        uh_without = UdpHeader.unpack(without[34:42])
        uh_with = UdpHeader.unpack(with_ck[34:42])
        assert uh_without.cksum == 0
        assert uh_with.cksum != 0
