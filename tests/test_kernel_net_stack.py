"""End-to-end network-stack tests: frames in, socket data out."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.net.headers import (
    TH_ACK,
    TH_SYN,
    IpHeader,
    TcpHeader,
    build_tcp_frame,
    build_udp_frame,
)
from repro.kernel.net.socket import Socket, sobind, socreate, solisten
from repro.kernel.proc import Proc
from repro.kernel.syscalls import syscall

LOCAL = 0x0A000001
REMOTE = 0x0A000002


def netkernel() -> Kernel:
    kernel = Kernel()
    kernel.boot(with_disk=False, with_console=False)
    return kernel


def inject(kernel: Kernel, frame: bytes, at_us: int = 1_000) -> None:
    kernel.netstack.wire.send_to_host(frame, at_us * 1_000)


class FrameSink:
    """Collects everything the kernel transmits."""

    def __init__(self, kernel: Kernel) -> None:
        self.frames: list[tuple[bytes, int]] = []
        kernel.netstack.wire.attach_remote(self)

    def attach_wire(self, wire) -> None:
        self.wire = wire

    def receive(self, frame: bytes, at_ns: int) -> None:
        self.frames.append((frame, at_ns))

    def tcp_headers(self) -> list[TcpHeader]:
        result = []
        for frame, _ in self.frames:
            ip = IpHeader.unpack(frame[14:34])
            if ip.proto == 6:
                result.append(TcpHeader.unpack(frame[34:54]))
        return result


def run_listener(kernel: Kernel, port: int, nbytes: int) -> dict:
    """Spawn the paper's listen/read/discard program."""
    state = {"data": b"", "done": False}

    def body(k, proc: Proc):
        fd = yield from syscall(k, proc, "socket", Socket.SOCK_STREAM)
        yield from syscall(k, proc, "bind", fd, port)
        yield from syscall(k, proc, "listen", fd)
        conn = yield from syscall(k, proc, "accept", fd)
        while len(state["data"]) < nbytes:
            data = yield from syscall(k, proc, "read", conn, 4096)
            state["data"] += data
        state["done"] = True
        yield from syscall(k, proc, "exit", 0)

    kernel.sched.spawn("listener", body)
    return state


class TestTcpReceivePath:
    def handshake_and_send(self, kernel: Kernel, payloads: list[bytes]) -> dict:
        state = run_listener(kernel, 4000, sum(len(p) for p in payloads))
        sink = FrameSink(kernel)
        iss = 9000
        inject(
            kernel,
            build_tcp_frame(REMOTE, LOCAL, 1234, 4000, seq=iss, ack=0, flags=TH_SYN),
            at_us=1_000,
        )
        # The SYN|ACK comes back; complete the handshake blind (times are
        # generous enough for the kernel to have replied).
        seq = iss + 1
        cursor = 8_000
        inject(
            kernel,
            build_tcp_frame(
                REMOTE, LOCAL, 1234, 4000, seq=seq, ack=1001, flags=TH_ACK
            ),
            at_us=cursor,
        )
        for payload in payloads:
            cursor += 2_000 + len(payload)
            inject(
                kernel,
                build_tcp_frame(
                    REMOTE,
                    LOCAL,
                    1234,
                    4000,
                    seq=seq,
                    ack=1001,
                    flags=TH_ACK,
                    payload=payload,
                ),
                at_us=cursor,
            )
            seq += len(payload)
        kernel.sched.run(until_ns=2_000_000_000)
        state["sink"] = sink
        return state

    def test_data_is_delivered_intact(self):
        kernel = netkernel()
        payloads = [bytes(range(256)) * 2, b"tail-data" * 10]
        state = self.handshake_and_send(kernel, payloads)
        assert state["done"]
        assert state["data"] == b"".join(payloads)

    def test_synack_emitted(self):
        kernel = netkernel()
        state = self.handshake_and_send(kernel, [b"x" * 100])
        flags = [th.flags for th in state["sink"].tcp_headers()]
        assert any(f & TH_SYN and f & TH_ACK for f in flags)

    def test_acks_emitted_for_data(self):
        kernel = netkernel()
        state = self.handshake_and_send(kernel, [b"a" * 512, b"b" * 512])
        acks = [
            th
            for th in state["sink"].tcp_headers()
            if th.flags == TH_ACK
        ]
        assert acks  # delayed ACK fires every second segment
        # rcv_nxt after SYN is iss+1 = 9001; both segments acked.
        assert max(th.ack for th in acks) >= 9001 + 1024

    def test_out_of_order_segment_dropped_and_reacked(self):
        kernel = netkernel()
        state = run_listener(kernel, 4000, 10)
        sink = FrameSink(kernel)
        inject(
            kernel,
            build_tcp_frame(REMOTE, LOCAL, 1234, 4000, seq=9000, ack=0, flags=TH_SYN),
            at_us=1_000,
        )
        # Data with a gap (seq jumps ahead).
        inject(
            kernel,
            build_tcp_frame(
                REMOTE,
                LOCAL,
                1234,
                4000,
                seq=9501,
                ack=1001,
                flags=TH_ACK,
                payload=b"y" * 10,
            ),
            at_us=20_000,
        )
        kernel.sched.run(until_ns=300_000_000)
        assert kernel.stats["tcp_rcvoopack"] == 1
        assert not state["done"]

    def test_corrupted_segment_dropped(self):
        kernel = netkernel()
        run_listener(kernel, 4000, 10)
        frame = bytearray(
            build_tcp_frame(
                REMOTE,
                LOCAL,
                1234,
                4000,
                seq=9000,
                ack=0,
                flags=TH_SYN,
            )
        )
        frame[40] ^= 0xFF  # corrupt the TCP header
        inject(kernel, bytes(frame), at_us=1_000)
        kernel.sched.run(until_ns=200_000_000)
        assert kernel.stats["tcp_badsum"] == 1

    def test_no_listener_counts_noport(self):
        kernel = netkernel()

        def body(k, proc):
            from repro.kernel.sched import tsleep

            yield from tsleep(k, "park", timo=20)

        kernel.sched.spawn("parked", body)
        inject(
            kernel,
            build_tcp_frame(REMOTE, LOCAL, 1234, 9999, seq=1, ack=0, flags=TH_SYN),
            at_us=1_000,
        )
        kernel.sched.run(until_ns=1_000_000_000)
        assert kernel.stats["tcp_noport"] == 1


class TestIpInput:
    def test_bad_ip_checksum_dropped(self):
        kernel = netkernel()
        frame = bytearray(
            build_udp_frame(REMOTE, LOCAL, 53, 53, payload=b"hello" * 12)
        )
        frame[16] ^= 0x40  # corrupt the IP header
        kernel.netstack.wire.send_to_host(bytes(frame), 1_000_000)

        def body(k, proc):
            from repro.kernel.sched import tsleep

            yield from tsleep(k, "park", timo=5)

        kernel.sched.spawn("parked", body)
        kernel.sched.run(until_ns=500_000_000)
        assert kernel.stats["ip_badsum"] == 1

    def test_not_ours_dropped(self):
        kernel = netkernel()
        frame = build_udp_frame(REMOTE, 0x0A0000FE, 53, 53, payload=b"x" * 30)
        kernel.netstack.wire.send_to_host(frame, 1_000_000)

        def body(k, proc):
            from repro.kernel.sched import tsleep

            yield from tsleep(k, "park", timo=5)

        kernel.sched.spawn("parked", body)
        kernel.sched.run(until_ns=500_000_000)
        assert kernel.stats["ip_notours"] == 1


class TestUdpPath:
    def deliver_udp(self, kernel: Kernel, payload: bytes, checksum: bool) -> Socket:
        so = socreate(kernel, Socket.SOCK_DGRAM)
        sobind(kernel, so, 2049)
        frame = build_udp_frame(
            REMOTE, LOCAL, 1023, 2049, payload=payload, with_checksum=checksum
        )
        kernel.netstack.wire.send_to_host(frame, 1_000_000)

        def body(k, proc):
            from repro.kernel.sched import tsleep

            yield from tsleep(k, "park", timo=5)

        kernel.sched.spawn("parked", body)
        kernel.sched.run(until_ns=500_000_000)
        return so

    def test_datagram_delivered(self):
        kernel = netkernel()
        so = self.deliver_udp(kernel, b"rpc-payload" * 3, checksum=False)
        assert so.so_rcv.cc == 33
        assert so.last_from == (REMOTE, 1023)

    def test_checksum_verified_when_enabled(self):
        kernel = netkernel()
        kernel.udpcksum = True
        so = self.deliver_udp(kernel, b"z" * 40, checksum=True)
        assert so.so_rcv.cc == 40
        assert kernel.stats["udp_badsum"] == 0

    def test_checksum_cost_only_when_present(self):
        """NFS's trick: checksum-free datagrams skip in_cksum entirely."""
        kernel_a = netkernel()
        self.deliver_udp(kernel_a, b"z" * 1000, checksum=False)
        kernel_b = netkernel()
        kernel_b.udpcksum = True
        self.deliver_udp(kernel_b, b"z" * 1000, checksum=True)
        assert (
            kernel_b.stats["in_cksum_calls"] > kernel_a.stats["in_cksum_calls"]
        )


class TestDriverRing:
    def test_ring_overflow_drops(self):
        kernel = netkernel()
        we = kernel.netstack.interfaces["we0"]
        # Ten max-size frames arrive before any interrupt is serviced.
        for i in range(10):
            frame = build_udp_frame(
                REMOTE, LOCAL, 1, 2, payload=bytes(1400), ident=i
            )
            we.deliver_frame(frame, at_ns=1_000_000)
        we.ingest_arrivals(now_ns=1_000_000)
        assert we.rx_dropped > 0
        assert sum(len(f) for f in we.rx_ring) <= we.RING_BYTES

    def test_bad_frame_length_rejected(self):
        kernel = netkernel()
        we = kernel.netstack.interfaces["we0"]
        with pytest.raises(ValueError):
            we.deliver_frame(b"short", at_ns=0)
        with pytest.raises(ValueError):
            we.deliver_frame(bytes(2000), at_ns=0)
