"""Tests for the before/after comparison tooling."""

from __future__ import annotations

from repro.analysis.callstack import analyze_capture
from repro.analysis.compare import FunctionDelta, compare_summaries
from repro.analysis.summary import FunctionStats, ProfileSummary, summarize

from stream_helpers import stream


def summary_of(simple_names, *steps) -> ProfileSummary:
    return summarize(analyze_capture(stream(simple_names, *steps)))


class TestFunctionDelta:
    def make(self, before_net, after_net) -> FunctionDelta:
        def stats(net):
            if net is None:
                return None
            return FunctionStats(
                name="f", calls=1, elapsed_us=net, net_us=net, max_us=net, min_us=net
            )

        return FunctionDelta(name="f", before=stats(before_net), after=stats(after_net))

    def test_delta_and_speedup(self):
        delta = self.make(100, 25)
        assert delta.net_delta_us == -75
        assert delta.speedup == 4.0

    def test_function_disappears(self):
        delta = self.make(100, None)
        assert delta.net_after_us == 0
        assert delta.speedup == float("inf")

    def test_function_appears(self):
        delta = self.make(None, 50)
        assert delta.net_delta_us == 50
        assert delta.speedup == 0.0

    def test_no_change(self):
        delta = self.make(None, None)
        assert delta.speedup == 1.0


class TestProfileComparison:
    def test_compare_real_summaries(self, simple_names):
        before = summary_of(
            simple_names,
            (">", "main", 0),
            (">", "cksum", 10),
            ("<", "cksum", 110),
            ("<", "main", 120),
        )
        after = summary_of(
            simple_names,
            (">", "main", 0),
            (">", "cksum", 10),
            ("<", "cksum", 20),
            ("<", "main", 30),
        )
        diff = compare_summaries(before, after)
        assert diff.wall_delta_us == -90
        assert diff.wall_speedup == 4.0
        cksum = diff.deltas["cksum"]
        assert cksum.net_delta_us == -90
        assert diff.biggest_movers(1)[0].name == "cksum"

    def test_union_of_functions(self, simple_names):
        before = summary_of(
            simple_names, (">", "read", 0), ("<", "read", 10)
        )
        after = summary_of(
            simple_names, (">", "bcopy", 0), ("<", "bcopy", 10)
        )
        diff = compare_summaries(before, after)
        assert set(diff.deltas) == {"read", "bcopy"}
        assert diff.deltas["read"].after is None
        assert diff.deltas["bcopy"].before is None

    def test_format(self, simple_names):
        before = summary_of(
            simple_names, (">", "main", 0), ("<", "main", 100)
        )
        after = summary_of(
            simple_names, (">", "main", 0), ("<", "main", 40)
        )
        text = compare_summaries(before, after).format()
        assert "2.50x" in text
        assert "main" in text
        assert "-60" in text
