"""Tests for the before/after comparison tooling."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.analysis.callstack import analyze_capture
from repro.analysis.compare import (
    FunctionDelta,
    WorkloadMismatchWarning,
    compare_summaries,
    json_safe,
)
from repro.analysis.summary import FunctionStats, ProfileSummary, summarize

from stream_helpers import stream


def summary_of(simple_names, *steps) -> ProfileSummary:
    return summarize(analyze_capture(stream(simple_names, *steps)))


def make_summary(wall_us: int = 0, **functions: int) -> ProfileSummary:
    stats = {
        name: FunctionStats(
            name=name, calls=1, elapsed_us=net, net_us=net, max_us=net, min_us=net
        )
        for name, net in functions.items()
    }
    busy = sum(functions.values())
    return ProfileSummary(
        wall_us=wall_us or busy,
        busy_us=busy,
        idle_us=max(0, (wall_us or busy) - busy),
        event_count=2 * len(functions),
        functions=stats,
    )


class TestFunctionDelta:
    def make(self, before_net, after_net) -> FunctionDelta:
        def stats(net):
            if net is None:
                return None
            return FunctionStats(
                name="f", calls=1, elapsed_us=net, net_us=net, max_us=net, min_us=net
            )

        return FunctionDelta(name="f", before=stats(before_net), after=stats(after_net))

    def test_delta_and_speedup(self):
        delta = self.make(100, 25)
        assert delta.status == "common"
        assert delta.net_delta_us == -75
        assert delta.speedup == 4.0

    def test_function_vanishes_is_not_a_zero_measurement(self):
        delta = self.make(100, None)
        assert delta.status == "vanished"
        # Absence is not "measured 0 us": no ratio to speak of.
        assert delta.speedup is None
        assert delta.net_delta_us == -100

    def test_function_appears_is_not_a_zero_measurement(self):
        delta = self.make(None, 50)
        assert delta.status == "appeared"
        assert delta.speedup is None
        assert delta.net_delta_us == 50

    def test_measured_zero_after_is_a_real_ratio(self):
        # Present on both sides but collapsed to 0 us: that IS infinite
        # speedup of a measured quantity (json_safe turns it to null).
        delta = self.make(100, 0)
        assert delta.status == "common"
        assert delta.speedup == float("inf")

    def test_both_measured_zero(self):
        delta = self.make(0, 0)
        assert delta.speedup == 1.0


class TestJsonSafe:
    def test_passthrough_and_nulling(self):
        assert json_safe(2.5) == 2.5
        assert json_safe(0.0) == 0.0
        assert json_safe(None) is None
        assert json_safe(float("inf")) is None
        assert json_safe(float("-inf")) is None
        assert json_safe(float("nan")) is None


class TestProfileComparison:
    def test_compare_real_summaries(self, simple_names):
        before = summary_of(
            simple_names,
            (">", "main", 0),
            (">", "cksum", 10),
            ("<", "cksum", 110),
            ("<", "main", 120),
        )
        after = summary_of(
            simple_names,
            (">", "main", 0),
            (">", "cksum", 10),
            ("<", "cksum", 20),
            ("<", "main", 30),
        )
        diff = compare_summaries(before, after)
        assert diff.wall_delta_us == -90
        assert diff.wall_speedup == 4.0
        cksum = diff.deltas["cksum"]
        assert cksum.net_delta_us == -90
        assert diff.biggest_movers(1)[0].name == "cksum"

    def test_union_of_functions(self, simple_names):
        before = summary_of(
            simple_names, (">", "read", 0), ("<", "read", 10)
        )
        after = summary_of(
            simple_names, (">", "bcopy", 0), ("<", "bcopy", 10)
        )
        diff = compare_summaries(before, after)
        assert set(diff.deltas) == {"read", "bcopy"}
        assert diff.deltas["read"].status == "vanished"
        assert diff.deltas["bcopy"].status == "appeared"
        assert [d.name for d in diff.vanished()] == ["read"]
        assert [d.name for d in diff.appeared()] == ["bcopy"]

    def test_format(self, simple_names):
        before = summary_of(
            simple_names, (">", "main", 0), ("<", "main", 100)
        )
        after = summary_of(
            simple_names, (">", "main", 0), ("<", "main", 40)
        )
        text = compare_summaries(before, after).format()
        assert "2.50x" in text
        assert "main" in text
        assert "-60" in text

    def test_format_marks_appeared_and_vanished(self):
        diff = compare_summaries(
            make_summary(gone_fn=100), make_summary(new_fn=50)
        )
        text = diff.format()
        assert "new" in text and "[appeared]" in text
        assert "gone" in text and "[vanished]" in text
        # Neither absent side ever prints as a zero measurement.
        for line in text.splitlines():
            if "new_fn" in line:
                assert not line.lstrip().startswith("0 ")


class TestCompareEdgeCases:
    def test_both_sides_empty(self):
        diff = compare_summaries(make_summary(), make_summary())
        assert diff.deltas == {}
        assert diff.wall_delta_us == 0
        assert diff.wall_speedup == 1.0
        assert diff.format()  # renders without error
        assert diff.to_json()["functions"] == []

    def test_empty_before_populated_after(self):
        diff = compare_summaries(make_summary(), make_summary(f=100))
        assert diff.deltas["f"].status == "appeared"
        assert diff.deltas["f"].speedup is None

    def test_populated_before_empty_after(self):
        diff = compare_summaries(make_summary(f=100), make_summary())
        assert diff.deltas["f"].status == "vanished"
        # Wall collapsed 100 -> 0: a measured-zero run, real inf ratio...
        assert diff.wall_speedup == float("inf")
        # ...which the JSON document must carry as null, not Infinity.
        assert diff.to_json()["wall_speedup"] is None

    def test_identical_runs(self, simple_names):
        steps = ((">", "main", 0), (">", "cksum", 10),
                 ("<", "cksum", 60), ("<", "main", 80))
        diff = compare_summaries(
            summary_of(simple_names, *steps), summary_of(simple_names, *steps)
        )
        assert diff.wall_delta_us == 0
        assert diff.wall_speedup == 1.0
        assert all(d.net_delta_us == 0 for d in diff.deltas.values())
        assert all(d.speedup == 1.0 for d in diff.deltas.values())

    def test_zero_wall_time_both_sides(self):
        diff = compare_summaries(make_summary(), make_summary())
        assert diff.wall_speedup == 1.0  # not a ZeroDivisionError, not inf

    def test_workload_mismatch_warns(self):
        with pytest.warns(WorkloadMismatchWarning, match="network.*forkexec"):
            compare_summaries(
                make_summary(f=10),
                make_summary(f=20),
                before_workload="network",
                after_workload="forkexec",
            )

    def test_matching_workloads_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            compare_summaries(
                make_summary(f=10),
                make_summary(f=20),
                before_workload="network",
                after_workload="network",
            )
            # Unknown on either side: comparability cannot be judged.
            compare_summaries(make_summary(f=10), make_summary(f=20))
            compare_summaries(
                make_summary(f=10), make_summary(f=20), before_workload="network"
            )


class TestComparisonJson:
    def test_document_is_strict_json(self):
        """Regression: inf speedups used to serialize as bare Infinity."""
        diff = compare_summaries(
            make_summary(collapsed=100, gone_fn=30),
            make_summary(collapsed=0, new_fn=40),
        )
        document = diff.to_json()
        # allow_nan=False is the strict-JSON tripwire: it raises on any
        # Infinity/NaN that leaks into the document.
        text = json.dumps(document, allow_nan=False)
        parsed = json.loads(text)
        rows = {row["name"]: row for row in parsed["functions"]}
        assert rows["collapsed"]["speedup"] is None  # measured-zero inf -> null
        assert rows["new_fn"]["status"] == "appeared"
        assert rows["new_fn"]["net_before_us"] is None
        assert rows["new_fn"]["calls_before"] is None
        assert rows["gone_fn"]["status"] == "vanished"
        assert rows["gone_fn"]["net_after_us"] is None
        assert rows["gone_fn"]["calls_after"] is None

    def test_limit(self):
        diff = compare_summaries(
            make_summary(a=10, b=20, c=30), make_summary(a=40, b=20, c=90)
        )
        document = diff.to_json(limit=1)
        assert len(document["functions"]) == 1
        assert document["functions"][0]["name"] == "c"
