"""Tests for the copy primitives and the kernel allocator."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.libkern import (
    bcopy,
    bcopyb,
    bzero,
    copyin,
    copyinstr,
    copyout,
    kmax,
    kmin,
    ovbcopy,
)
from repro.kernel.malloc import KernelAllocator, free, malloc
from repro.sim.bus import Region


def timed_us(kernel: Kernel, fn, *args, **kwargs) -> float:
    before = kernel.machine.now_ns
    fn(kernel, *args, **kwargs)
    return (kernel.machine.now_ns - before) / 1_000


class TestCopyPrimitives:
    def test_bcopy_isa_frame_calibration(self):
        """The paper's headline: ~1045 us to copy a full frame from the
        8-bit controller (we model ~10% high; see CostModel)."""
        kernel = Kernel()
        us = timed_us(kernel, bcopy, 1500, Region.ISA8, Region.MAIN)
        assert 1_000 <= us <= 1_250

    def test_bcopy_main_memory_is_fast(self):
        kernel = Kernel()
        us = timed_us(kernel, bcopy, 1500, Region.MAIN, Region.MAIN)
        assert us <= 70

    def test_copyout_cluster_calibration(self):
        """Paper: "copyout takes about 40 microseconds to copy a 1Kbyte
        mbuf cluster to the user data space"."""
        kernel = Kernel()
        us = timed_us(kernel, copyout, 1024)
        assert 35 <= us <= 55

    def test_copyinstr_calibration(self):
        """Table 1: copyinstr ~170 us (long pathname)."""
        kernel = Kernel()
        us = timed_us(kernel, copyinstr, "x" * 130)
        assert 120 <= us <= 220

    def test_bcopyb_screen_scroll_calibration(self):
        """Figure 5: the console scroll bcopyb runs ~3.6 ms."""
        from repro.kernel.drivers.cons import SCROLL_BYTES

        kernel = Kernel()
        us = timed_us(kernel, bcopyb, SCROLL_BYTES)
        assert 2_300 <= us <= 4_500

    def test_bcopy_passes_data_through(self):
        kernel = Kernel()
        assert bcopy(kernel, 3, data=b"abc") == b"abc"
        assert copyin(kernel, 2, data=b"hi") == b"hi"

    def test_negative_lengths_rejected(self):
        kernel = Kernel()
        for fn in (bcopy, bzero, copyin, copyout, ovbcopy, bcopyb):
            with pytest.raises(ValueError):
                fn(kernel, -1)

    def test_min_max(self):
        kernel = Kernel()
        assert kmin(kernel, 3, 9) == 3
        assert kmax(kernel, 3, 9) == 9

    def test_isa_traffic_counted(self):
        kernel = Kernel()
        bcopy(kernel, 100, Region.ISA8, Region.MAIN)
        assert kernel.bus.isa_bytes_moved == 100


class TestAllocator:
    def test_bucket_rounding(self):
        assert KernelAllocator.bucket_for(1) == 16
        assert KernelAllocator.bucket_for(16) == 16
        assert KernelAllocator.bucket_for(17) == 32
        assert KernelAllocator.bucket_for(5000) == 8192

    def test_bucket_for_zero_rejected(self):
        with pytest.raises(ValueError):
            KernelAllocator.bucket_for(0)

    def test_malloc_steady_state_calibration(self):
        """Table 1: malloc ~37 us, free ~32 us (bucket hit path)."""
        kernel = Kernel()
        malloc(kernel, 128, "test")  # first call refills the bucket
        us_alloc = timed_us(kernel, malloc, 128, "test")
        us_free = timed_us(kernel, free, 128, "test")
        assert 22 <= us_alloc <= 55
        assert 20 <= us_free <= 50

    def test_refill_pulls_kmem_alloc(self):
        """The first allocation of a size class is the slow path."""
        kernel = Kernel()
        first = timed_us(kernel, malloc, 128, "test")
        second = timed_us(kernel, malloc, 128, "test")
        assert first > 4 * second  # the refill's kmem_alloc dominates

    def test_freelist_accounting(self):
        kernel = Kernel()
        malloc(kernel, 64, "test")
        chunks_per_page = 4096 // 64
        assert kernel.kmem.freelists[64] == chunks_per_page - 1
        free(kernel, 64, "test")
        assert kernel.kmem.freelists[64] == chunks_per_page

    def test_type_statistics(self):
        kernel = Kernel()
        malloc(kernel, 64, "mbuf")
        malloc(kernel, 64, "mbuf")
        free(kernel, 64, "mbuf")
        stats = kernel.kmem.stats.by_type["mbuf"]
        assert stats["allocs"] == 2
        assert stats["frees"] == 1
        assert stats["inuse"] == 1

    def test_huge_allocation_bypasses_buckets(self):
        kernel = Kernel()
        returned = malloc(kernel, 20_000, "big")
        assert returned == 20_000
        assert 20_000 not in kernel.kmem.freelists
