"""Property-based stress tests for the call-tree reconstruction.

The analyzer must never crash and must conserve time on *any* event
stream the hardware could plausibly record: well-formed nested streams,
streams with context switches, and streams truncated at both ends by the
capture window.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.callstack import analyze_capture, build_call_tree
from repro.analysis.events import decode_capture
from repro.analysis.summary import summarize

from stream_helpers import make_names, stream

NAMES = make_names(
    ("fn_a", 500),
    ("fn_b", 502),
    ("fn_c", 504),
    ("fn_d", 506),
    ("fn_e", 508),
    ("swtch", 600, "!"),
    ("MARK", 1002, "="),
)
FUNCTIONS = ["fn_a", "fn_b", "fn_c", "fn_d", "fn_e"]


def generate_wellformed(seed: int, max_events: int = 120) -> list[tuple[str, str, int]]:
    """A random properly-nested stream (entries/exits balanced, LIFO)."""
    rng = random.Random(seed)
    steps: list[tuple[str, str, int]] = []
    stack: list[str] = []
    t = 0
    while len(steps) < max_events:
        t += rng.randint(1, 50)
        choice = rng.random()
        if stack and (choice < 0.4 or len(stack) > 5):
            steps.append(("<", stack.pop(), t))
        elif choice < 0.9:
            name = rng.choice(FUNCTIONS)
            stack.append(name)
            steps.append((">", name, t))
        else:
            steps.append(("=", "MARK", t))
    while stack:
        t += rng.randint(1, 50)
        steps.append(("<", stack.pop(), t))
    return steps


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_wellformed_streams_conserve_time(seed):
    steps = generate_wellformed(seed)
    capture = stream(NAMES, *steps)
    analysis = analyze_capture(capture)
    attributed = sum(node.self_us for node in analysis.nodes())
    assert attributed + analysis.unattributed_us == analysis.wall_us
    assert analysis.idle_us == 0  # no swtch frames in this generator
    # Every frame closed cleanly; inclusive == subtree self everywhere.
    for node in analysis.nodes():
        assert node.closed
        assert not node.truncated
        assert node.inclusive_us == sum(d.self_us for d in node.walk())


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_wellformed_summary_consistent(seed):
    steps = generate_wellformed(seed)
    capture = stream(NAMES, *steps)
    summary = summarize(analyze_capture(capture))
    # Call counts in the summary equal entry events in the stream.
    for name in FUNCTIONS:
        expected = sum(1 for op, n, _ in steps if op == ">" and n == name)
        stats = summary.get(name)
        assert (stats.calls if stats else 0) == expected
    # Net time sums to attributed busy time.
    total_net = sum(s.net_us for s in summary.functions.values())
    assert total_net <= summary.wall_us


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    cut_head=st.integers(min_value=0, max_value=30),
    cut_tail=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=60)
def test_truncated_streams_never_crash(seed, cut_head, cut_tail):
    """Any window cut out of a valid stream analyses without error and
    still conserves time."""
    steps = generate_wellformed(seed)
    window = steps[cut_head : len(steps) - cut_tail]
    if not window:
        return
    capture = stream(NAMES, *window)
    analysis = analyze_capture(capture)
    attributed = sum(
        node.self_us for node in analysis.nodes() if not node.synthetic
    )
    assert attributed + analysis.unattributed_us == analysis.wall_us
    assert analysis.event_count == len(window)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    switch_points=st.lists(
        st.integers(min_value=1, max_value=100), min_size=0, max_size=4
    ),
)
@settings(max_examples=40)
def test_streams_with_context_switches(seed, switch_points):
    """Interleave swtch entry/exit pairs anywhere; reconstruction stays
    time-conserving and idle equals the swtch self time."""
    rng = random.Random(seed)
    steps = generate_wellformed(seed, max_events=60)
    for point in sorted(set(switch_points), reverse=True):
        if point >= len(steps):
            continue
        t_at = steps[point][2]
        gap = rng.randint(2, 200)
        # Shift later events to make room, insert a swtch pair.
        shifted = [
            (op, name, t + gap + 2) for op, name, t in steps[point:]
        ]
        steps = steps[:point] + [
            (">", "swtch", t_at + 1),
            ("<", "swtch", t_at + 1 + gap),
        ] + shifted
    capture = stream(NAMES, *steps)
    analysis = analyze_capture(capture)
    attributed = sum(
        node.self_us for node in analysis.nodes() if not node.synthetic
    )
    assert attributed + analysis.unattributed_us == analysis.wall_us
    swtch_self = sum(
        n.self_us for n in analysis.nodes() if n.is_swtch and not n.synthetic
    )
    assert analysis.idle_us == swtch_self


@given(data=st.binary(min_size=0, max_size=400))
@settings(max_examples=60)
def test_arbitrary_tag_soup_never_crashes(data):
    """Even a stream of random tags (some unknown, some exits-without-
    entries) decodes and reconstructs without raising."""
    from repro.profiler.capture import Capture
    from repro.profiler.ram import RawRecord

    records = []
    t = 0
    for i in range(0, len(data) - 1, 2):
        tag = (data[i] << 8 | data[i + 1]) % 1100
        t += data[i] + 1
        records.append(RawRecord(tag=tag, time=t & 0xFFFFFF))
    capture = Capture(records=tuple(records), names=NAMES)
    analysis = analyze_capture(capture)
    assert analysis.event_count == len(records)
    summary = summarize(analysis)
    assert summary.wall_us >= 0
