"""Golden-file tests: the three figure reports, byte-for-byte.

The simulation is deterministic, so the canonical Figure 3/4/5 report
text is checked in under ``tests/golden/`` and asserted verbatim.  Any
change to decoding, reconstruction, aggregation or formatting shows up
here as a diff against the golden text — which is exactly the kind of
silent drift the streaming pipeline's byte-identity guarantee depends on
being able to detect.

To regenerate after an *intentional* report change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_reports.py

then review the diff like any other code change.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.summary import summarize
from repro.analysis.trace import format_trace
from repro.system import build_case_study

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _check(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden file {path} missing; run with REGEN_GOLDEN=1 to create it"
    )
    golden = path.read_text()
    assert text == golden, (
        f"{name} drifted from the golden copy; if the change is intentional, "
        "regenerate with REGEN_GOLDEN=1 and review the diff"
    )


@pytest.fixture(scope="module")
def network_capture():
    system = build_case_study()
    from repro.workloads.network_recv import network_receive

    capture = system.profile(
        lambda: network_receive(system.kernel, total_packets=6),
        label="TCP receive (golden)",
    )
    return system, capture


@pytest.fixture(scope="module")
def forkexec_capture():
    system = build_case_study()
    from repro.workloads.forkexec import fork_exec_storm

    capture = system.profile(
        lambda: fork_exec_storm(system.kernel, iterations=1),
        label="fork/exec storm (golden)",
    )
    return system, capture


def test_figure3_summary_golden(network_capture):
    system, capture = network_capture
    summary = summarize(system.analyze(capture))
    _check("figure3_network_summary.txt", summary.format(limit=20) + "\n")


def test_figure4_trace_golden(network_capture):
    system, capture = network_capture
    analysis = system.analyze(capture)
    _check("figure4_code_path_trace.txt", format_trace(analysis) + "\n")


def test_figure5_summary_golden(forkexec_capture):
    system, capture = forkexec_capture
    summary = summarize(system.analyze(capture))
    _check("figure5_forkexec_summary.txt", summary.format(limit=20) + "\n")


def test_streaming_matches_figure3_golden(network_capture):
    """The streaming path must reproduce the golden text, not just agree
    with whatever batch currently produces."""
    system, capture = network_capture
    text = system.summarize_streaming(capture).format(limit=20) + "\n"
    if not os.environ.get("REGEN_GOLDEN"):
        assert text == (GOLDEN_DIR / "figure3_network_summary.txt").read_text()


def test_sharded_matches_figure5_golden(forkexec_capture):
    system, capture = forkexec_capture
    result = system.summarize_sharded(capture, workers=2, max_shard_events=512)
    text = result.summary.format(limit=20) + "\n"
    if not os.environ.get("REGEN_GOLDEN"):
        assert text == (GOLDEN_DIR / "figure5_forkexec_summary.txt").read_text()
