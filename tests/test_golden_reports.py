"""Golden-file tests: the three figure reports, byte-for-byte.

The simulation is deterministic, so the canonical Figure 3/4/5 report
text is checked in under ``tests/golden/`` and asserted verbatim.  Any
change to decoding, reconstruction, aggregation or formatting shows up
here as a diff against the golden text — which is exactly the kind of
silent drift the streaming pipeline's byte-identity guarantee depends on
being able to detect.

To regenerate after an *intentional* report change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_reports.py

then review the diff like any other code change.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.summary import summarize
from repro.analysis.trace import format_trace
from repro.system import build_case_study

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _check(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden file {path} missing; run with REGEN_GOLDEN=1 to create it"
    )
    golden = path.read_text()
    assert text == golden, (
        f"{name} drifted from the golden copy; if the change is intentional, "
        "regenerate with REGEN_GOLDEN=1 and review the diff"
    )


@pytest.fixture(scope="module")
def network_capture():
    system = build_case_study()
    from repro.workloads.network_recv import network_receive

    capture = system.profile(
        lambda: network_receive(system.kernel, total_packets=6),
        label="TCP receive (golden)",
    )
    return system, capture


@pytest.fixture(scope="module")
def forkexec_capture():
    system = build_case_study()
    from repro.workloads.forkexec import fork_exec_storm

    capture = system.profile(
        lambda: fork_exec_storm(system.kernel, iterations=1),
        label="fork/exec storm (golden)",
    )
    return system, capture


def test_figure3_summary_golden(network_capture):
    system, capture = network_capture
    summary = summarize(system.analyze(capture))
    _check("figure3_network_summary.txt", summary.format(limit=20) + "\n")


def test_figure4_trace_golden(network_capture):
    system, capture = network_capture
    analysis = system.analyze(capture)
    _check("figure4_code_path_trace.txt", format_trace(analysis) + "\n")


def test_figure5_summary_golden(forkexec_capture):
    system, capture = forkexec_capture
    summary = summarize(system.analyze(capture))
    _check("figure5_forkexec_summary.txt", summary.format(limit=20) + "\n")


def test_streaming_matches_figure3_golden(network_capture):
    """The streaming path must reproduce the golden text, not just agree
    with whatever batch currently produces."""
    system, capture = network_capture
    text = system.summarize_streaming(capture).format(limit=20) + "\n"
    if not os.environ.get("REGEN_GOLDEN"):
        assert text == (GOLDEN_DIR / "figure3_network_summary.txt").read_text()


def test_sharded_matches_figure5_golden(forkexec_capture):
    system, capture = forkexec_capture
    result = system.summarize_sharded(capture, workers=2, max_shard_events=512)
    text = result.summary.format(limit=20) + "\n"
    if not os.environ.get("REGEN_GOLDEN"):
        assert text == (GOLDEN_DIR / "figure5_forkexec_summary.txt").read_text()


# -- binary capture goldens (inputs to the proflint CI gate) -----------------
#
# Tag values are assigned in kfunc *declaration* order, which follows
# module import order — and pytest's collection imports test modules in
# whatever set was selected, perturbing that order.  So the binary
# goldens are pinned to the one import sequence that is reproducible
# anywhere: a fresh `python -m repro capture` subprocess.  Regenerate
# with REGEN_GOLDEN=1 like the text goldens.
#
# Two generations are checked in.  The *_v2 files are what today's CLI
# writes (MPF2) and must regenerate byte-identically.  figure3_network.mpf
# and figure5_forkexec.mpf are FROZEN MPF1 files from before the format
# gained a self-describing header: they are never regenerated — their
# whole point is proving that old captures keep decoding, byte for byte,
# to the same records and golden summaries.

CAPTURE_RECIPES = {
    "figure3_network_v2.mpf": ["--workload", "network", "--packets", "6"],
    "figure5_forkexec_v2.mpf": ["--workload", "forkexec", "--packets", "15"],
}

#: legacy MPF1 fixture -> the MPF2 golden holding the same records.
LEGACY_CAPTURES = {
    "figure3_network.mpf": "figure3_network_v2.mpf",
    "figure5_forkexec.mpf": "figure5_forkexec_v2.mpf",
}


def _cli_capture(args: list[str], save: pathlib.Path, names=None) -> None:
    import subprocess
    import sys

    src = pathlib.Path(__file__).parent.parent / "src"
    env = dict(os.environ, PYTHONPATH=str(src))
    command = [sys.executable, "-m", "repro", "capture", *args, "--save", str(save)]
    if names is not None:
        command += ["--names", str(names)]
    subprocess.run(command, check=True, env=env, stdout=subprocess.DEVNULL)


@pytest.mark.parametrize("name,args", sorted(CAPTURE_RECIPES.items()))
def test_capture_bytes_golden(name, args, tmp_path):
    """The raw .mpf bytes `python -m repro lint` gates on in CI must
    regenerate byte-identically from a fresh process."""
    golden = GOLDEN_DIR / name
    names_out = tmp_path / "fresh.tags" if name == "figure3_network_v2.mpf" else None
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        _cli_capture(args, golden, names=GOLDEN_DIR / "case_study.tags"
                     if names_out else None)
        pytest.skip(f"regenerated {golden}")
    assert golden.exists(), (
        f"golden file {golden} missing; run with REGEN_GOLDEN=1 to create it"
    )
    fresh = tmp_path / name
    _cli_capture(args, fresh, names=names_out)
    assert fresh.read_bytes() == golden.read_bytes(), (
        f"{name} drifted from the golden copy; the capture pipeline is no "
        "longer deterministic, or the record format changed — regenerate "
        "with REGEN_GOLDEN=1 and review"
    )
    if names_out is not None:
        assert names_out.read_text() == (
            GOLDEN_DIR / "case_study.tags"
        ).read_text(), "the name/tag file drifted from case_study.tags"


def test_golden_capture_decodes_to_golden_summary():
    """Cross-check the binary goldens against the text goldens: loading
    figure3_network_v2.mpf with case_study.tags must reproduce the exact
    Figure 3 summary text.  This ties the .mpf/.tags pair to the same
    truth the report tests assert, whatever tag values they contain."""
    if os.environ.get("REGEN_GOLDEN"):
        pytest.skip("regenerating")
    from repro.instrument.namefile import NameTable
    from repro.profiler.capture import Capture

    names = NameTable.read(GOLDEN_DIR / "case_study.tags")
    capture = Capture.load(GOLDEN_DIR / "figure3_network_v2.mpf", names)
    from repro.analysis.callstack import analyze_capture

    text = summarize(analyze_capture(capture)).format(limit=20) + "\n"
    assert text == (GOLDEN_DIR / "figure3_network_summary.txt").read_text()


# -- MPF1 backward compatibility over the frozen legacy goldens --------------


@pytest.mark.parametrize("legacy,v2", sorted(LEGACY_CAPTURES.items()))
def test_legacy_mpf1_golden_decodes_identically(legacy, v2):
    """A pre-MPF2 capture must decode to exactly the records its MPF2
    sibling carries — byte-identical interchange across the format bump
    (the legacy files are frozen, never regenerated)."""
    if os.environ.get("REGEN_GOLDEN"):
        pytest.skip("regenerating")
    from repro.profiler.upload import read_capture

    old_records, old_meta = read_capture(GOLDEN_DIR / legacy)
    new_records, new_meta = read_capture(GOLDEN_DIR / v2)
    assert old_meta.version == 1 and new_meta.version == 2
    assert old_records == new_records


def test_legacy_mpf1_golden_still_summarizes(recwarn):
    """The frozen MPF1 figure5 capture must still produce the golden
    Figure 5 summary (metadata defaults to stock, with a warning)."""
    if os.environ.get("REGEN_GOLDEN"):
        pytest.skip("regenerating")
    from repro.analysis.callstack import analyze_capture
    from repro.instrument.namefile import NameTable
    from repro.profiler.capture import Capture
    from repro.profiler.upload import CaptureMetadataWarning

    names = NameTable.read(GOLDEN_DIR / "case_study.tags")
    capture = Capture.load(GOLDEN_DIR / "figure5_forkexec.mpf", names)
    assert any(
        isinstance(w.message, CaptureMetadataWarning) for w in recwarn.list
    )
    text = summarize(analyze_capture(capture)).format(limit=20) + "\n"
    assert text == (GOLDEN_DIR / "figure5_forkexec_summary.txt").read_text()
