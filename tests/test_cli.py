"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import WORKLOADS, main


def run_cli(*argv: str) -> list[str]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    assert code == 0
    return lines


class TestCaptureCommand:
    def test_network_summary(self):
        lines = run_cli("capture", "--workload", "network", "--packets", "6")
        text = "\n".join(lines)
        assert "captured" in text
        assert "Elapsed time" in text
        assert "bcopy" in text

    def test_multiple_reports(self):
        lines = run_cli(
            "capture",
            "--workload",
            "network",
            "--packets",
            "4",
            "--report",
            "summary",
            "--report",
            "flame",
        )
        text = "\n".join(lines)
        assert "Elapsed time" in text
        assert "[" in text  # flame bars

    def test_gprof_and_folded(self):
        lines = run_cli(
            "capture", "--workload", "mixed", "--packets", "8",
            "--report", "gprof", "--report", "folded",
        )
        text = "\n".join(lines)
        assert "calls" in text
        assert ";" in text  # folded stacks

    def test_micro_profile_modules(self):
        lines = run_cli(
            "capture", "--workload", "network", "--packets", "4",
            "--modules", "netinet,isa/if_we",
        )
        text = "\n".join(lines)
        assert "tcp_input" in text
        assert "pmap_remove" not in text

    def test_save_and_analyze_roundtrip(self, tmp_path):
        capture_file = tmp_path / "run.mpf"
        names_file = tmp_path / "run.tags"
        run_cli(
            "capture", "--workload", "network", "--packets", "5",
            "--save", str(capture_file), "--names", str(names_file),
        )
        assert capture_file.exists() and names_file.exists()
        lines = run_cli(
            "analyze", str(capture_file), "--names", str(names_file),
            "--report", "trace",
        )
        text = "\n".join(lines)
        assert "loaded" in text
        assert "-> tcp_input" in text

    def test_tty_workload(self):
        lines = run_cli("capture", "--workload", "tty", "--packets", "20")
        assert any("comintr" in line for line in lines)

    def test_snmp_workload(self):
        lines = run_cli(
            "capture", "--workload", "snmp-btree", "--packets", "5"
        )
        assert any("mib_search_btree" in line for line in lines)


class TestOtherCommands:
    def test_workloads_listing(self):
        lines = run_cli("workloads")
        text = "\n".join(lines)
        for name in WORKLOADS:
            assert name in text

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["capture", "--workload", "nope"], out=lambda s: None)

    def test_analyze_requires_names(self):
        with pytest.raises(SystemExit):
            main(["analyze", "whatever.mpf"], out=lambda s: None)
