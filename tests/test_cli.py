"""Tests for the command-line interface."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.__main__ import WORKLOADS, main

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def run_cli(*argv: str) -> list[str]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    assert code == 0
    return lines


def run_cli_code(*argv: str) -> tuple[int, list[str]]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, lines


class TestCaptureCommand:
    def test_network_summary(self):
        lines = run_cli("capture", "--workload", "network", "--packets", "6")
        text = "\n".join(lines)
        assert "captured" in text
        assert "Elapsed time" in text
        assert "bcopy" in text

    def test_multiple_reports(self):
        lines = run_cli(
            "capture",
            "--workload",
            "network",
            "--packets",
            "4",
            "--report",
            "summary",
            "--report",
            "flame",
        )
        text = "\n".join(lines)
        assert "Elapsed time" in text
        assert "[" in text  # flame bars

    def test_gprof_and_folded(self):
        lines = run_cli(
            "capture", "--workload", "mixed", "--packets", "8",
            "--report", "gprof", "--report", "folded",
        )
        text = "\n".join(lines)
        assert "calls" in text
        assert ";" in text  # folded stacks

    def test_micro_profile_modules(self):
        lines = run_cli(
            "capture", "--workload", "network", "--packets", "4",
            "--modules", "netinet,isa/if_we",
        )
        text = "\n".join(lines)
        assert "tcp_input" in text
        assert "pmap_remove" not in text

    def test_save_and_analyze_roundtrip(self, tmp_path):
        capture_file = tmp_path / "run.mpf"
        names_file = tmp_path / "run.tags"
        run_cli(
            "capture", "--workload", "network", "--packets", "5",
            "--save", str(capture_file), "--names", str(names_file),
        )
        assert capture_file.exists() and names_file.exists()
        lines = run_cli(
            "analyze", str(capture_file), "--names", str(names_file),
            "--report", "trace",
        )
        text = "\n".join(lines)
        assert "loaded" in text
        assert "-> tcp_input" in text

    def test_tty_workload(self):
        lines = run_cli("capture", "--workload", "tty", "--packets", "20")
        assert any("comintr" in line for line in lines)

    def test_snmp_workload(self):
        lines = run_cli(
            "capture", "--workload", "snmp-btree", "--packets", "5"
        )
        assert any("mib_search_btree" in line for line in lines)


class TestDesyncFooter:
    def test_capture_summary_reports_zero_desyncs(self):
        lines = run_cli("capture", "--workload", "network", "--packets", "4")
        assert "kstack desyncs = 0" in lines

    def test_streaming_capture_also_reports_desyncs(self):
        lines = run_cli(
            "capture", "--workload", "network", "--packets", "4", "--stream"
        )
        assert "kstack desyncs = 0" in lines

    def test_analyze_summary_reports_desyncs(self, tmp_path):
        capture_file = tmp_path / "run.mpf"
        names_file = tmp_path / "run.tags"
        run_cli(
            "capture", "--workload", "network", "--packets", "4",
            "--save", str(capture_file), "--names", str(names_file),
        )
        lines = run_cli("analyze", str(capture_file), "--names", str(names_file))
        assert "kstack desyncs = 0" in lines


class TestLintCommand:
    def test_self_check_is_default_and_clean(self):
        code, lines = run_cli_code("lint")
        assert code == 0
        assert any("clean" in line for line in lines)

    def test_golden_captures_lint_clean(self):
        captures = sorted(str(p) for p in GOLDEN_DIR.glob("*.mpf"))
        assert captures, "golden captures missing from tests/golden/"
        code, _ = run_cli_code(
            "lint", *captures, "--names", str(GOLDEN_DIR / "case_study.tags")
        )
        assert code == 0

    def test_kernel_ast_pass_is_clean(self):
        code, _ = run_cli_code("lint", "--kernel-ast")
        assert code == 0

    def test_error_diagnostics_exit_one(self, tmp_path):
        bad = tmp_path / "bad.tags"
        bad.write_text("main/502\nmain/510\n")
        code, lines = run_cli_code("lint", "--names", str(bad))
        assert code == 1
        assert any("P001" in line for line in lines)

    def test_captures_without_names_exit_two(self, tmp_path):
        capture = tmp_path / "x.mpf"
        capture.write_bytes(b"MPF1\x00\x00\x00\x00")
        code, _ = run_cli_code("lint", str(capture))
        assert code == 2

    def test_json_report(self, tmp_path):
        bad = tmp_path / "bad.tags"
        bad.write_text("broken/501\n")
        code, lines = run_cli_code("lint", "--names", str(bad), "--json")
        assert code == 1
        document = json.loads("\n".join(lines))
        assert document["tool"] == "proflint"
        assert document["counts"]["error"] == 1
        assert document["diagnostics"][0]["code"] == "P003"


class TestStrictAnalyze:
    def test_clean_capture_analyzes(self, tmp_path):
        capture_file = tmp_path / "run.mpf"
        names_file = tmp_path / "run.tags"
        run_cli(
            "capture", "--workload", "network", "--packets", "4",
            "--save", str(capture_file), "--names", str(names_file),
        )
        lines = run_cli(
            "analyze", str(capture_file), "--names", str(names_file), "--strict"
        )
        text = "\n".join(lines)
        assert "clean" in text and "Elapsed time" in text

    def test_corrupt_capture_refused(self, tmp_path):
        capture_file = tmp_path / "run.mpf"
        names_file = tmp_path / "run.tags"
        run_cli(
            "capture", "--workload", "network", "--packets", "4",
            "--save", str(capture_file), "--names", str(names_file),
        )
        data = capture_file.read_bytes()
        capture_file.write_bytes(data[:-3])  # tear the last record
        code, lines = run_cli_code(
            "analyze", str(capture_file), "--names", str(names_file), "--strict"
        )
        assert code == 1
        text = "\n".join(lines)
        assert "P200" in text and "refusing to analyze" in text
        assert "Elapsed time" not in text  # analysis never ran


class TestOtherCommands:
    def test_workloads_listing(self):
        lines = run_cli("workloads")
        text = "\n".join(lines)
        for name in WORKLOADS:
            assert name in text

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["capture", "--workload", "nope"], out=lambda s: None)

    def test_analyze_requires_names(self):
        with pytest.raises(SystemExit):
            main(["analyze", "whatever.mpf"], out=lambda s: None)
