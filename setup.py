"""Legacy setup shim: this environment has no `wheel` package, so editable
installs go through `pip install -e . --no-use-pep517`, which needs a
setup.py.  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
