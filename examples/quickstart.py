#!/usr/bin/env python3
"""Quickstart: profile the kernel's network receive path end to end.

This is the paper's whole workflow in one script:

1. build the case-study rig (40 MHz 386 PC, miniature 386BSD, Profiler
   piggy-backed into the WD8003E's spare EPROM socket, kernel compiled
   with triggers);
2. press the switch, run a workload, pull the battery-backed RAMs;
3. decode the capture and print the two reports — the function summary
   (paper Figure 3) and the code-path trace (paper Figure 4).

Run:  python examples/quickstart.py
"""

from repro import build_case_study
from repro.analysis.summary import summarize
from repro.analysis.trace import format_trace
from repro.workloads.network_recv import network_receive


def main() -> None:
    print("Building the case-study system (this boots the kernel)...")
    system = build_case_study()
    print(
        f"  kernel: {system.image.profiled_functions} profiled functions, "
        f"{system.image.trigger_points} trigger points"
    )
    print(
        f"  profiler: {system.board.ram.depth}-event RAM at EPROM window "
        f"{system.adapter.base:#x}"
    )

    print("\nArming the Profiler and running the receive test...")
    result = {}
    capture = system.profile(
        lambda: result.setdefault(
            "run", network_receive(system.kernel, total_packets=40)
        ),
        label="quickstart: TCP receive",
    )
    run = result["run"]
    print(
        f"  received {run.bytes_received} bytes in {run.elapsed_us / 1000:.1f} ms"
        f" of simulated time ({len(capture)} events captured)"
    )

    analysis = system.analyze(capture)
    summary = summarize(analysis)

    print("\n--- Function summary (the paper's Figure 3 report) ---")
    print(summary.format(limit=12))

    print("\n--- Code-path trace, first 2 ms (the paper's Figure 4 report) ---")
    print(format_trace(analysis, start_us=0, end_us=2_000))

    top = summary.rows()[0]
    print(
        f"\nConclusion, same as 1993: the CPU is "
        f"{100 * summary.busy_fraction:.1f}% busy and {top.name} alone is "
        f"{summary.pct_real(top):.1f}% of it — the 8-bit ISA copy out of "
        "the Ethernet controller dominates everything."
    )


if __name__ == "__main__":
    main()
