#!/usr/bin/env python3
"""Macro- versus micro-profiling: the paper's selective-compilation knob.

"This selective profiling allowed two broad categories of profiling to
take place, macro-profiling and micro-profiling."  Macro: compile the
whole kernel with triggers and see everything (at the cost of filling the
16384-event RAM quickly).  Micro: compile only the modules of interest —
here the network driver and TCP/IP — "allowing a detailed and
unobstructed view of that section".

Run:  python examples/selective_profiling.py
"""

from repro import build_case_study
from repro.analysis.summary import summarize
from repro.workloads.network_recv import network_receive

PACKETS = 30


def run_profile(label: str, modules=None):
    system = build_case_study(profiled_modules=modules)
    capture = system.profile(
        lambda: network_receive(system.kernel, total_packets=PACKETS),
        label=label,
    )
    return system, capture


def main() -> None:
    print("=== Macro-profile: the whole kernel compiled with triggers ===")
    macro_system, macro_capture = run_profile("macro")
    macro_summary = summarize(macro_system.analyze(macro_capture))
    print(
        f"instrumented functions: "
        f"{macro_system.kernel.instrumented_functions}; "
        f"events captured: {len(macro_capture)}"
        + (" (RAM OVERFLOWED)" if macro_capture.overflowed else "")
    )
    print(macro_summary.format(limit=8))

    print(
        "\n=== Micro-profile: only netinet/ + the Ethernet driver "
        "recompiled with -profile ==="
    )
    micro_system, micro_capture = run_profile(
        "micro", modules=["netinet", "isa/if_we", "net"]
    )
    micro_summary = summarize(micro_system.analyze(micro_capture))
    print(
        f"instrumented functions: "
        f"{micro_system.kernel.instrumented_functions}; "
        f"events captured: {len(micro_capture)}"
    )
    print(micro_summary.format(limit=8))

    ratio = len(macro_capture) / max(1, len(micro_capture))
    print(
        f"\nThe trade: the micro capture used {ratio:.1f}x fewer events for "
        "the same workload, so the same 16384-event RAM covers a "
        f"{ratio:.1f}x longer interval of just the code you care about —"
    )
    print(
        "'highly selective profiling ... without filling the Profiler RAM "
        "with events in which there was no interest.'"
    )

    # The micro profile still shows the bottleneck pair.
    top_two = [row.name for row in micro_summary.rows()[:2]]
    print(f"\nTop of the micro profile: {top_two} — same verdict, sharper view.")


if __name__ == "__main__":
    main()
