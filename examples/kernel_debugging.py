#!/usr/bin/env python3
"""Kernel debugging with the Profiler — the abstract's other promise.

"The solution also provides for effective and flexible kernel debugging."
A code-path trace is a flight recorder: when something misbehaves, the
last 16384 events show exactly how the kernel got there.  This example
injects a corrupted TCP segment into the receive path and uses the trace
and the anomaly report to find where it was dropped — without a single
printf in the kernel.

Run:  python examples/kernel_debugging.py
"""

from repro import build_case_study
from repro.analysis.trace import format_trace
from repro.kernel.net.headers import TH_SYN, build_tcp_frame
from repro.kernel.net.socket import Socket
from repro.kernel.syscalls import syscall


def main() -> None:
    system = build_case_study()
    kernel = system.kernel

    def scenario():
        # A listener that will never see a connection...
        def body(k, proc):
            fd = yield from syscall(k, proc, "socket", Socket.SOCK_STREAM)
            yield from syscall(k, proc, "bind", fd, 4000)
            yield from syscall(k, proc, "listen", fd)
            from repro.kernel.sched import tsleep

            yield from tsleep(k, "debug-park", timo=10)

        kernel.sched.spawn("listener", body)
        # ...because the client's SYN arrives corrupted on the wire.
        frame = bytearray(
            build_tcp_frame(
                src=0x0A000002,
                dst=0x0A000001,
                sport=1234,
                dport=4000,
                seq=9000,
                ack=0,
                flags=TH_SYN,
            )
        )
        frame[45] ^= 0x20  # one flipped bit in the TCP header
        kernel.netstack.wire.send_to_host(bytes(frame), 2_000_000)
        kernel.sched.run(until_ns=500_000_000)

    capture = system.profile(scenario, label="debugging a dropped SYN")
    analysis = system.analyze(capture)

    print("Symptom: the connection never completes.  Reading the recorder:\n")
    print(format_trace(analysis, start_us=1_900, end_us=8_000))

    print("\nWhat the trace shows:")
    print(
        " * ISAINTR -> weintr -> werint -> weread -> weget: the frame DID "
        "arrive and was copied out of the controller;"
    )
    print(" * ipintr ran and the IP header checksum verified;")
    print(
        " * tcp_input ran in_cksum over the segment and returned without "
        "calling sonewconn — the drop point."
    )
    print(f"\nKernel counters agree: tcp_badsum = {kernel.stats['tcp_badsum']}")
    assert kernel.stats["tcp_badsum"] == 1
    print(
        "\nDiagnosis in one capture: the segment died in tcp_input's "
        "checksum, i.e. the corruption happened on the wire, not in the "
        "kernel.  'Looking under the hood while the engine is running.'"
    )


if __name__ == "__main__":
    main()
