#!/usr/bin/env python3
"""User-level profiling: the SNMP B-tree case study (§User Code Profiling).

The paper's workflow for user code: configure the driver stub, mmap the
Profiler window into the process, link with the profiling crt.o — then
the same board records user-function triggers interleaved with kernel
events.  The case study it enabled: "a major bottleneck in searching the
MIB table linearly; redesigning the data structure to use a B-tree ...
reduced the CPU cycles required to respond to SNMP requests by an order
of magnitude."

Run:  python examples/user_profiling.py
"""

from repro import build_case_study
from repro.analysis.compare import compare_summaries
from repro.analysis.summary import summarize
from repro.analysis.trace import format_trace
from repro.workloads.snmp import snmp_agent_run

MIB_SIZE = 600
REQUESTS = 20


def profile(mib_kind: str):
    system = build_case_study()
    result = {}
    capture = system.profile(
        lambda: result.setdefault(
            "r",
            snmp_agent_run(
                system.kernel,
                mib_kind=mib_kind,
                mib_size=MIB_SIZE,
                requests=REQUESTS,
                names=system.names,
            ),
        ),
        label=f"snmpd with {mib_kind} MIB",
    )
    return system, capture, result["r"]


def main() -> None:
    print("Profiling the SNMP agent (linear MIB search, the CMU original)...")
    system, capture, linear = profile("linear")
    analysis = system.analyze(capture)
    before = summarize(analysis)
    print(before.format(limit=6))
    search = before.get("mib_search_linear")
    print(
        f"\nThe user-level profile points straight at the search: "
        f"{search.avg_us} us of every request, "
        f"{linear.comparisons // REQUESTS} OID comparisons each.\n"
    )

    print("A slice of the mixed user+kernel trace (user frames are the")
    print("snmp_* / mib_* entries; clock interrupts nest right inside them):\n")
    window = [
        line
        for line in format_trace(analysis).splitlines()
        if "snmp_request" in line or "mib_search" in line or "ISAINTR" in line
    ]
    print("\n".join(window[:10]))

    print("\nRedesigning the MIB as a B-tree and re-profiling...")
    system2, capture2, btree = profile("btree")
    after = summarize(system2.analyze(capture2))

    diff = compare_summaries(before, after)
    print(diff.format(limit=6))

    speedup = before.get("mib_search_linear").net_us / max(
        1, after.get("mib_search_btree").net_us
    )
    print(
        f"\nSearch CPU reduced {speedup:.0f}x "
        f"({linear.comparisons // REQUESTS} -> "
        f"{btree.comparisons // REQUESTS} comparisons/request) — "
        "'reduced the CPU cycles required to respond to SNMP requests by "
        "an order of magnitude.'"
    )


if __name__ == "__main__":
    main()
