#!/usr/bin/env python3
"""The paper's §Network Performance investigation, reproduced as analysis.

The measured story: bcopy (the driver's 8-bit ISA copy) and in_cksum (the
unoptimised C checksum) together eat two thirds of the CPU.  The paper
then asks two "would this help?" questions and answers them with the
Profiler's numbers; here both counterfactuals are *run*, not estimated:

1. keep received frames in controller RAM as external mbufs (rejected:
   every later touch of the data pays the bus penalty — "a big loss");
2. recode in_cksum in assembler (recommended: "a major improvement").

Run:  python examples/network_bottleneck.py
"""

from repro import build_case_study
from repro.analysis.summary import summarize
from repro.sim.cpu import CostModel
from repro.workloads.network_recv import network_receive

PACKETS = 40


def measure(label: str, cost: CostModel | None = None) -> float:
    """Run the receive test; returns per-packet cost in microseconds."""
    system = build_case_study(cost=cost)
    run = network_receive(system.kernel, total_packets=PACKETS)
    per_packet = run.elapsed_us / run.packets_sent
    print(f"  {label:<38} {per_packet:8.0f} us/packet")
    return per_packet


def main() -> None:
    print("Step 1: profile the stock kernel and find the bottleneck")
    system = build_case_study()
    capture = system.profile(
        lambda: network_receive(system.kernel, total_packets=PACKETS),
        label="network bottleneck hunt",
    )
    summary = summarize(system.analyze(capture))
    print(summary.format(limit=6))
    bcopy = summary.rows()[0]
    cksum = summary.get("in_cksum")
    print(
        f"\n  -> {summary.pct_real(bcopy):.1f}% in bcopy, "
        f"{summary.pct_real(cksum):.1f}% in in_cksum: two functions own "
        "two thirds of a saturated CPU.\n"
    )

    print("Step 2: run the paper's two counterfactuals for real")
    stock = measure("stock kernel")
    controller = measure(
        "mbufs left in controller RAM (idea #1)",
        CostModel(mbufs_in_controller_ram=True),
    )
    recoded = measure("in_cksum recoded in assembler (idea #2)", CostModel(asm_cksum=True))

    print("\nStep 3: the verdicts (paper: 2000 -> ~3000 us; 2000 -> ~1200 us)")
    print(
        f"  idea #1 is a LOSS of {controller - stock:.0f} us/packet — "
        "checksum and copyout now read the slow 8-bit bus byte by byte"
    )
    print(
        f"  idea #2 is a WIN of {stock - recoded:.0f} us/packet — "
        "and the limiting factor becomes the ISA bus itself"
    )
    assert controller > stock > recoded


if __name__ == "__main__":
    main()
