#!/usr/bin/env python3
"""The paper's §Fork/exec Profiling, reproduced: Figure 5 and the pmap story.

"The current situation looks fairly abysmal; it takes some 24
milliseconds to perform a vfork operation, and it takes about 28
milliseconds to perform an execve system call."  The profile shows why:
the pmap module walks every mapped page of the address space — present or
not — through pmap_pte, and exec/exit funnel whole-address-space
teardowns into giant pmap_remove calls.

Run:  python examples/forkexec_analysis.py
"""

from repro import build_case_study
from repro.analysis.graph import call_graph, subsystem_rollup
from repro.analysis.summary import summarize
from repro.kernel.kfunc import registered_functions
from repro.workloads.forkexec import fork_exec_storm


def main() -> None:
    system = build_case_study()
    print("Running the fork/exec loop under the Profiler...")
    result = {}
    capture = system.profile(
        lambda: result.setdefault(
            "r",
            fork_exec_storm(system.kernel, iterations=3, print_status=True),
        ),
        label="fork/exec analysis",
    )
    storm = result["r"]

    print(
        f"\nMeasured latencies (paper: vfork ~24 ms, execve ~28 ms):\n"
        f"  fork  : {storm.mean_fork_us / 1000:6.1f} ms\n"
        f"  execve: {storm.mean_exec_us / 1000:6.1f} ms\n"
        f"  pair  : {storm.mean_pair_us / 1000:6.1f} ms"
    )

    analysis = system.analyze(capture)
    summary = summarize(analysis)
    print("\n--- High-cost subroutines (the paper's Figure 5 report) ---")
    print(summary.format(limit=13))

    pte = summary.get("pmap_pte")
    print(
        f"\npmap_pte: {pte.calls} calls at ~{pte.avg_us} us — the walk the "
        "paper counts at 1053 calls per fork 'and a similar amount when an "
        "exec is done'."
    )

    # Subsystem rollup (the paper's future-work 'groupings of functions').
    module_of = {meta.name: meta.module.split("/")[0] for meta in registered_functions()}
    rollup = subsystem_rollup(analysis, module_of)
    busy = analysis.busy_us or 1
    print("\nPer-subsystem share of busy time:")
    for label, bucket in sorted(rollup.items(), key=lambda kv: -kv[1]["net_us"])[:6]:
        print(
            f"  {label:<12} {100 * bucket['net_us'] / busy:6.1f}%  "
            f"({bucket['calls']} calls)"
        )

    vm_share = sum(
        bucket["net_us"]
        for label, bucket in rollup.items()
        if label in ("vm", "i386")
    ) / busy
    print(
        f"\n'Over 50% of the time is being spent in the virtual memory "
        f"routines' — measured: {100 * vm_share:.1f}%."
    )

    graph = call_graph(analysis)
    fork_edges = sorted(
        graph.out_edges("vmspace_fork", data=True),
        key=lambda e: -e[2]["inclusive_us"],
    )[:4]
    print("\nWhere vmspace_fork's time goes (call-graph edges):")
    for _, callee, data in fork_edges:
        print(
            f"  -> {callee:<16} {data['inclusive_us']:>8} us over "
            f"{data['calls']} calls"
        )
    print(
        "\nThe paper's remedy stands: 'a major performance benefit would "
        "occur if some of that glue could be trimmed back'."
    )


if __name__ == "__main__":
    main()
