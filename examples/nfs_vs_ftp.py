#!/usr/bin/env python3
"""The paper's NFS curiosity: no checksums means *more* throughput.

"An interesting situation arises due to the fact that UDP checksums are
usually turned off with NFS; since the checksum routine contributed a
large proportion to the CPU overhead, NFS actually provides less overhead
and better throughput than an FTP style connection!"

This example streams the same number of bytes three ways and prints the
throughput and the measured RPC turnaround distribution.

Run:  python examples/nfs_vs_ftp.py
"""

from repro import build_case_study
from repro.analysis.histogram import histogram_for
from repro.workloads.network_recv import network_receive
from repro.workloads.nfsio import nfs_read_stream

FILE_BYTES = 48 * 1024


def main() -> None:
    print(f"Streaming {FILE_BYTES // 1024} KB to the PC three ways...\n")

    nfs = nfs_read_stream(
        build_case_study().kernel, file_bytes=FILE_BYTES, with_checksums=False
    )
    print(
        f"  NFS, UDP checksums OFF : {nfs.throughput_kbps:7.0f} kb/s "
        f"(mean RPC turnaround {nfs.mean_turnaround_us:.0f} us)"
    )

    nfs_ck = nfs_read_stream(
        build_case_study().kernel, file_bytes=FILE_BYTES, with_checksums=True
    )
    print(
        f"  NFS, UDP checksums ON  : {nfs_ck.throughput_kbps:7.0f} kb/s "
        f"(mean RPC turnaround {nfs_ck.mean_turnaround_us:.0f} us)"
    )

    ftp = network_receive(
        build_case_study().kernel, total_packets=FILE_BYTES // 1024
    )
    print(f"  FTP-style TCP stream   : {ftp.throughput_kbps:7.0f} kb/s")

    print(
        f"\nThe inversion holds: checksum-free NFS is "
        f"{100 * (nfs.throughput_kbps / ftp.throughput_kbps - 1):.0f}% faster "
        "than TCP on this CPU-bound receiver, and turning checksums on "
        f"costs NFS {100 * (1 - nfs_ck.throughput_kbps / nfs.throughput_kbps):.0f}%."
    )

    print(
        "\nRPC turnaround distribution (the measurement the paper says the "
        "Profiler made easy):"
    )
    from repro.analysis.callstack import CallTreeAnalysis

    hist = histogram_for(
        CallTreeAnalysis(
            roots=[], anomalies=[], wall_us=0, idle_us=0,
            unattributed_us=0, event_count=0, context_switches=0, procs=(),
        ),
        "rpc_turnaround",
        buckets=8,
        samples=nfs.rpc_turnaround_us,
    )
    print(hist.format())


if __name__ == "__main__":
    main()
